// Production-scale packet-level scenarios: the Section 5.3 methodology
// pushed to P = 4096..65536 endpoints, the regime the SIMD-batched window
// engine exists for.
//
// Three scenario families, each on a direct (torus) and an indirect
// (tapered fat tree) network:
//
//  * saturation ladder — uniform traffic at a load ladder spanning the
//    knee, as in fig_saturation but at 64x and beyond the paper's P;
//  * sort grid — the transpose and bit-reverse permutations that a
//    column-sort/FFT phase offers the network (a permutation's offered
//    load does not collapse onto one endpoint, so it stays meaningful at
//    P = 65536, where uniform's per-pair statistics wash out);
//  * fault degradation — the same grid point fault-free vs. a plan with
//    packet drops, retransmission, and a degraded spine link.
//
// Wall-clock guidance: the default grid simulates tens of millions of
// link events (minutes of CPU); `--ci` trims to the P = 4096 rows with
// shorter windows for the smoke lane. Note average_distance() is O(P^2)
// route walks — at these P we print the topology's diameter_hops() bound
// instead.
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "exp/sweep.hpp"
#include "fault/fault.hpp"
#include "net/packet_sim.hpp"
#include "net/topology.hpp"
#include "obs/cli.hpp"
#include "obs/metrics.hpp"
#include "obs/net_telemetry.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace logp;

struct Scenario {
  std::string label;
  std::unique_ptr<net::Topology> topo;
  net::TrafficPattern pattern;
  double load;
  Cycles duration;
  const fault::FaultPlan* faults = nullptr;
};

net::PacketSimConfig scenario_config(const Scenario& s, int sim_threads) {
  net::PacketSimConfig cfg;
  cfg.pattern = s.pattern;
  cfg.injection_rate = s.load;
  cfg.duration = s.duration;
  cfg.warmup = s.duration / 10;
  cfg.drain_limit = 20 * s.duration;
  cfg.sim_threads = sim_threads;
  cfg.faults = s.faults;
  return cfg;
}

void print_rows(util::TablePrinter& tp, const std::vector<Scenario>& grid,
                const std::vector<net::PacketSimResult>& results) {
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Scenario& s = grid[i];
    const auto& r = results[i];
    if (r.truncated)
      std::fprintf(stderr,
                   "warning: %s gave up draining with %lld packets in "
                   "flight; figures understate congestion\n",
                   s.label.c_str(), static_cast<long long>(r.undrained));
    tp.add_row({s.label, std::to_string(s.topo->num_endpoints()),
                util::fmt(s.load, 4), util::fmt_count(r.injected),
                util::fmt(r.latency.mean(), 0), util::fmt(r.p95_latency, 0),
                util::fmt(r.throughput, 4),
                r.saturated ? "SATURATED" : "stable"});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = exp::threads_from_args(argc, argv);
  const int sim_threads = exp::sim_threads_from_args(argc, argv);
  // --ci: the P = 4096 slice with short windows, sized for the smoke lane.
  const bool ci = exp::bool_from_args(argc, argv, "--ci");
  // Packet-level obs subset: the sinks attach to one exemplar re-run (the
  // degraded fault point) after the sweep, so the table above stays
  // byte-identical with the flags on or off.
  const obs::ObsFlags obs_flags = obs::obs_from_args(argc, argv);
  if (const int rc = exp::reject_unknown_flags(
          argc, argv,
          "[--threads N] [--sim-threads N] [--ci] [--profile] "
          "[--trace-json FILE] [--metrics-csv FILE] [--links-csv FILE]"))
    return rc;
  if (const int rc = obs::reject_machine_only_flags(obs_flags, argv[0]))
    return rc;

  std::cout << "== Large-P production scenarios (packet-level, P = 4096.."
            << (ci ? "4096" : "65536") << ") ==\n\n";

  // A degraded-but-alive network: steady packet loss with retransmission
  // plus one spine link at quarter speed through the middle of the run.
  fault::FaultPlan plan;
  plan.drop_rate = 0.02;
  plan.retry_timeout = 256;
  plan.max_retries = 4;
  plan.link_faults.push_back({0, 4096, 0, 0, 0});  // placeholder; fixed below
  // Degrade leaf 0's uplink (present in every fat tree) for the middle
  // half of the longest duration used below.
  plan.link_faults[0] = {0, 4096, 1000, 3000, 4};

  std::vector<Scenario> grid;
  const logp::Cycles dur = ci ? 2000 : 6000;
  // -- saturation ladder, P = 4096 --
  for (const double load : {0.001, 0.004, 0.016}) {
    grid.push_back({"saturation/torus64x64", net::make_mesh2d(64, 64, true),
                    net::TrafficPattern::kUniform, load, dur});
    grid.push_back({"saturation/fattree4096t2", net::make_fat_tree4(4096, 2),
                    net::TrafficPattern::kUniform, load, dur});
  }
  // -- sort grid (permutation traffic), P = 4096 --
  for (const auto pat :
       {net::TrafficPattern::kTranspose, net::TrafficPattern::kBitReverse}) {
    const char* pname = net::traffic_pattern_name(pat);
    grid.push_back({std::string("sortgrid/torus64x64/") + pname,
                    net::make_mesh2d(64, 64, true), pat, 0.004, dur});
    grid.push_back({std::string("sortgrid/fattree4096t2/") + pname,
                    net::make_fat_tree4(4096, 2), pat, 0.004, dur});
  }
  // -- fault degradation, P = 4096 (same point with and without the plan) --
  grid.push_back({"faults/off/fattree4096t2", net::make_fat_tree4(4096, 2),
                  net::TrafficPattern::kUniform, 0.004, ci ? 2000 : 4000});
  grid.push_back({"faults/on/fattree4096t2", net::make_fat_tree4(4096, 2),
                  net::TrafficPattern::kUniform, 0.004, ci ? 2000 : 4000,
                  &plan});
  if (!ci) {
    // -- beyond: P = 16384 and P = 65536, permutation traffic (see header) --
    grid.push_back({"scale/torus128x128", net::make_mesh2d(128, 128, true),
                    net::TrafficPattern::kTranspose, 0.002, 3000});
    grid.push_back({"scale/fattree16384t2", net::make_fat_tree4(16384, 2),
                    net::TrafficPattern::kBitReverse, 0.002, 3000});
    grid.push_back({"scale/torus256x256", net::make_mesh2d(256, 256, true),
                    net::TrafficPattern::kTranspose, 0.0005, 2000});
    grid.push_back({"scale/fattree65536t2", net::make_fat_tree4(65536, 2),
                    net::TrafficPattern::kBitReverse, 0.0005, 2000});
  }

  std::vector<std::function<net::PacketSimResult()>> jobs;
  jobs.reserve(grid.size());
  for (const Scenario& s : grid)
    jobs.push_back([&s, sim_threads] {
      return net::run_packet_sim(*s.topo, scenario_config(s, sim_threads));
    });
  const exp::SweepRunner runner({threads, sim_threads});
  const auto results = runner.map(jobs);

  util::TablePrinter tp({"scenario", "P", "load", "injected", "mean lat",
                         "p95 lat", "throughput", "state"});
  print_rows(tp, grid, results);
  tp.print(std::cout);

  // The fault pair, spelled out: what 2% loss + retransmission + a slow
  // uplink does to the same offered load.
  const auto& off = results[results.size() - (ci ? 2 : 6)];
  const auto& on = results[results.size() - (ci ? 1 : 5)];
  std::cout << "\n-- fault degradation (fattree4096t2 @ 0.004) --\n"
            << "fault-free: delivered " << util::fmt_count(off.delivered)
            << ", mean " << util::fmt(off.latency.mean(), 0) << " cyc\n"
            << "degraded:   delivered " << util::fmt_count(on.delivered)
            << ", mean " << util::fmt(on.latency.mean(), 0) << " cyc, dropped "
            << util::fmt_count(on.dropped) << ", retransmitted "
            << util::fmt_count(on.retransmitted) << ", lost "
            << util::fmt_count(on.lost) << "\n\n"
            << "Diameter bounds (hops; O(1), not O(P^2) route walks):\n";
  for (const auto* t :
       {grid[0].topo.get(), grid[1].topo.get()})
    std::cout << "  " << t->name() << ": " << t->diameter_hops() << '\n';
  std::cout << "\nEvery row above is byte-identical at any --threads /\n"
               "--sim-threads value, and with SIMD kernels on or off —\n"
               "the canonical (time, injection-id) order pins the\n"
               "trajectory; batching only changes wall-clock time.\n";

  if (obs_flags.any()) {
    // Exemplar: the degraded fault point (the most telemetry-interesting
    // row — drops, retries, and a slow uplink all show up per-link).
    const Scenario& ex = grid[grid.size() - (ci ? 1 : 5)];
    obs::NetTelemetry tel;
    tel.sample_every = 100;
    obs::MetricsRegistry metrics;
    net::PacketSimConfig cfg = scenario_config(ex, sim_threads);
    cfg.telemetry = &tel;
    cfg.metrics = &metrics;
    (void)net::run_packet_sim(*ex.topo, cfg);
    obs::emit_packet_obs(obs_flags, tel, metrics, ex.label, std::cout);
  }
  return 0;
}
