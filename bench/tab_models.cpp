// Reproduces the Section 6 model comparison: what PRAM, BSP and LogP
// predict for broadcast, summation and the FFT — against what the LogP
// machine actually does. The PRAM's free communication makes it wildly
// optimistic; BSP's mandatory barriers and next-superstep delivery make it
// pessimistic for latency-sensitive schedules; LogP's predictions are what
// the simulator executes.
#include <iostream>

#include "core/broadcast_tree.hpp"
#include "core/fft_cost.hpp"
#include "core/summation.hpp"
#include "exp/sweep.hpp"
#include "models/bsp.hpp"
#include "models/pram.hpp"
#include "obs/cli.hpp"
#include "runtime/collectives.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace logp;

Cycles simulate_broadcast(const Params& prm,
                          const obs::ObsFlags* flags = nullptr) {
  const auto tree = optimal_broadcast_tree(prm);
  sim::MachineConfig cfg;
  cfg.params = prm;
  cfg.record_trace = flags != nullptr && flags->wants_trace();
  runtime::Scheduler sched(cfg);
  std::vector<std::uint64_t> value(static_cast<std::size_t>(prm.P), 1);
  sched.set_program([&](runtime::Ctx ctx) -> runtime::Task {
    return runtime::coll::broadcast_optimal(
        ctx, tree, &value[static_cast<std::size_t>(ctx.proc())]);
  });
  const Cycles end = sched.run();
  if (flags != nullptr)
    obs::emit_machine_obs(*flags, sched.machine(), "optimal broadcast P=64",
                          std::cout);
  return end;
}

Cycles simulate_sum(const Params& prm, std::int64_t n) {
  const Cycles T = optimal_sum_time(n, prm);
  const auto schedule = optimal_sum_schedule(T, prm);
  sim::MachineConfig cfg;
  cfg.params = prm;
  runtime::Scheduler sched(cfg);
  std::uint64_t out = 0;
  sched.set_program([&](runtime::Ctx ctx) -> runtime::Task {
    return runtime::coll::reduce_optimal(
        ctx, schedule, [](ProcId, std::int64_t) { return 1; }, &out);
  });
  return sched.run();
}

}  // namespace

int main(int argc, char** argv) {
  // --trace / --profile re-run the optimal-broadcast row's simulation with
  // recording on after the tables; defaults leave output untouched.
  const obs::ObsFlags obs_flags = obs::obs_from_args(argc, argv);
  if (const int rc = exp::reject_unknown_flags(
          argc, argv,
          "[--trace] [--profile] [--trace-json FILE] [--metrics-csv FILE]"))
    return rc;
  const Params prm{20, 4, 8, 64};
  const std::int64_t n = 1 << 16;
  models::PramModel pram{prm.P};
  // BSP parameters matched to the same machine: per-message routing cost g,
  // barrier = one dissemination barrier's worth of messages.
  models::BspModel bsp{prm.P, prm.g,
                       static_cast<Cycles>(7) * prm.message_time()};

  std::cout << "== Section 6: model predictions vs LogP execution ==\n"
            << "machine " << prm.to_string() << ", n = " << n
            << " where applicable (cycles)\n\n";

  util::TablePrinter tp({"problem", "PRAM", "BSP", "LogP analytic",
                         "LogP simulated"});
  tp.add_row({"broadcast (1 word)", util::fmt_count(pram.broadcast_erew()),
              util::fmt_count(bsp.broadcast_tree()),
              util::fmt_count(optimal_broadcast_time(prm)),
              util::fmt_count(simulate_broadcast(prm))});
  const std::int64_t nsum = 1 << 12;
  tp.add_row({"sum of 4096", util::fmt_count(pram.sum(nsum)),
              util::fmt_count(bsp.sum(nsum)),
              util::fmt_count(optimal_sum_time(nsum, prm)),
              util::fmt_count(simulate_sum(prm, nsum))});
  const auto fft = fft_cost(n, FftLayout::kHybrid, prm);
  tp.add_row({"FFT 64K pts", util::fmt_count(pram.fft(n)),
              util::fmt_count(bsp.fft(n)), util::fmt_count(fft.total()),
              "(see fig6 bench)"});
  tp.print(std::cout);

  std::cout << "\nPRAM charges nothing for communication, so its broadcast\n"
            << "and summation predictions are off by orders of magnitude.\n"
            << "BSP is close on bulk work but cannot express the overlapped\n"
            << "broadcast/summation schedules (messages arrive only at the\n"
            << "next superstep, and every step pays the barrier l).\n\n";

  std::cout << "== Executable BSP: tree summation on the BspMachine ==\n\n";
  util::TablePrinter bp({"P", "BSP time", "LogP optimal", "BSP/LogP"});
  for (const int P : {8, 32, 128}) {
    Params lp = prm;
    lp.P = P;
    models::BspMachine m(P, prm.g, static_cast<Cycles>(7) * prm.message_time());
    std::vector<std::uint64_t> acc(static_cast<std::size_t>(P), nsum / P);
    for (int stride = 1; stride < P; stride *= 2) {
      m.superstep([&](ProcId p, const auto& in, auto& out) {
        for (const auto& msg : in) acc[static_cast<std::size_t>(p)] += msg.word;
        if ((p & (2 * stride - 1)) == stride)
          out.push_back({-1, p - stride, 0, acc[static_cast<std::size_t>(p)]});
        return Cycles{1};
      });
    }
    m.superstep([&](ProcId p, const auto& in, auto&) {
      for (const auto& msg : in) acc[static_cast<std::size_t>(p)] += msg.word;
      return Cycles{0};
    });
    const Cycles bsp_time = m.time() + nsum / P - 1;  // local chains first
    const Cycles logp_time = optimal_sum_time(nsum, lp);
    bp.add_row({std::to_string(P), util::fmt_count(bsp_time),
                util::fmt_count(logp_time),
                util::fmt(double(bsp_time) / double(logp_time), 2)});
  }
  bp.print(std::cout);

  if (obs_flags.any()) simulate_broadcast(prm, &obs_flags);
  return 0;
}
