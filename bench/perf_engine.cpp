// Harness microbenchmarks (google-benchmark): throughput of the simulator
// itself — events per second for message ping-pong, broadcast fan-out and
// all-to-all — so regressions in the engine are visible, plus sweep
// throughput (events/sec through exp::SweepRunner at 1, 4 and N workers) so
// regressions in the parallel harness are too. BM_PacketSim and
// BM_MachineChurn guard the zero-allocation hot paths of the packet-level
// network simulator and the machine's message/continuation pools.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "core/broadcast_tree.hpp"
#include "exp/sweep.hpp"
#include "fault/fault.hpp"
#include "net/packet_sim.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "runtime/collectives.hpp"

namespace {

using namespace logp;
namespace coll = runtime::coll;

void BM_PingPong(benchmark::State& state) {
  const auto rounds = static_cast<std::int64_t>(state.range(0));
  for (auto _ : state) {
    sim::MachineConfig cfg;
    cfg.params = {6, 2, 4, 2};
    runtime::Scheduler sched(cfg);
    sched.set_program([&](runtime::Ctx ctx) -> runtime::Task {
      return [](runtime::Ctx c, std::int64_t n) -> runtime::Task {
        for (std::int64_t i = 0; i < n; ++i) {
          if (c.proc() == 0) {
            co_await c.send(1, 1);
            (void)co_await c.recv(2);
          } else {
            (void)co_await c.recv(1);
            co_await c.send(0, 2);
          }
        }
      }(ctx, rounds);
    });
    benchmark::DoNotOptimize(sched.run());
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
}
BENCHMARK(BM_PingPong)->Arg(1000);

void BM_Broadcast(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  const Params prm{6, 2, 4, P};
  const auto tree = optimal_broadcast_tree(prm);
  for (auto _ : state) {
    sim::MachineConfig cfg;
    cfg.params = prm;
    runtime::Scheduler sched(cfg);
    std::vector<std::uint64_t> value(static_cast<std::size_t>(P), 1);
    sched.set_program([&](runtime::Ctx ctx) -> runtime::Task {
      return coll::broadcast_optimal(
          ctx, tree, &value[static_cast<std::size_t>(ctx.proc())]);
    });
    benchmark::DoNotOptimize(sched.run());
  }
  state.SetItemsProcessed(state.iterations() * (P - 1));
}
BENCHMARK(BM_Broadcast)->Arg(64)->Arg(1024);

void BM_AllToAll(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  const Params prm{20, 2, 4, P};
  for (auto _ : state) {
    sim::MachineConfig cfg;
    cfg.params = prm;
    runtime::Scheduler sched(cfg);
    coll::A2AOptions opts;
    opts.msgs_per_peer = 8;
    sched.set_program([&](runtime::Ctx ctx) -> runtime::Task {
      return coll::all_to_all(ctx, opts);
    });
    benchmark::DoNotOptimize(sched.run());
  }
  state.SetItemsProcessed(state.iterations() * P * (P - 1) * 8);
}
BENCHMARK(BM_AllToAll)->Arg(16)->Arg(64);

/// Packet-level network simulator throughput (delivered packets/sec of wall
/// time). Arg = injection rate in units of 1e-4 packets/node/cycle; 200 is
/// the stable regime, 500 pushes the torus toward its saturation knee, so
/// both the low-occupancy and the deep-queue paths are timed.
///
/// LOGP_PERF_OBS=1 attaches a MetricsRegistry (the engine-introspection
/// sink) to every run. Like BM_PacketSimPar's LOGP_SIM_THREADS, the toggle
/// is an env var rather than an Arg so the benchmark NAME stays identical —
/// tools/bench_record.py --compare can gate the recorder-attached run
/// against a recorder-off baseline of the same BM_PacketSim/200 row (CI
/// asserts within 10%).
void BM_PacketSim(benchmark::State& state) {
  const char* env = std::getenv("LOGP_PERF_OBS");
  const bool obs_on = env != nullptr && std::atoi(env) != 0;
  const auto topo = net::make_mesh2d(8, 8, true);
  obs::MetricsRegistry metrics;
  net::PacketSimConfig cfg;
  cfg.injection_rate = static_cast<double>(state.range(0)) * 1e-4;
  cfg.duration = 20000;
  if (obs_on) cfg.metrics = &metrics;
  std::int64_t delivered = 0;
  for (auto _ : state) {
    const auto r = net::run_packet_sim(*topo, cfg);
    delivered = r.delivered;
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * delivered);
  state.counters["obs"] = obs_on ? 1 : 0;
}
BENCHMARK(BM_PacketSim)->Arg(200)->Arg(500);

/// Faulted-path throughput in the fault-degradation-grid regime: a 16x16
/// torus under load heavy enough that link backlogs form, with an active
/// FaultPlan (2% drop + 0.5% corruption, retransmitted with backoff, plus
/// killed/degraded link intervals) so every window runs the faulted kernel.
/// This is the per-cell workload of bench/fig_fault_degradation scaled up
/// one topology size; Arg is injection rate x 1e4. The ratio
/// BM_PacketSim : BM_PacketSimFaulted is the price of fault handling
/// itself — the batch verdict pipeline exists to keep it near 1.
void BM_PacketSimFaulted(benchmark::State& state) {
  const auto topo = net::make_mesh2d(16, 16, true);
  net::PacketSimConfig cfg;
  cfg.injection_rate = static_cast<double>(state.range(0)) * 1e-4;
  cfg.duration = 20000;
  fault::FaultPlan plan;
  plan.drop_rate = 0.02;
  plan.corrupt_rate = 0.005;
  plan.retry_timeout = 4 * net::lookahead(cfg);
  plan.max_retries = 4;
  plan.link_faults.push_back({0, 1, 0, cfg.duration / 2, 3});
  plan.link_faults.push_back({17, 18, cfg.duration / 4, cfg.duration, 0});
  cfg.faults = &plan;
  std::int64_t delivered = 0;
  for (auto _ : state) {
    const auto r = net::run_packet_sim(*topo, cfg);
    delivered = r.delivered;
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * delivered);
}
BENCHMARK(BM_PacketSimFaulted)->Arg(500)->Arg(600);

/// Production-scale grid: 64x64 torus (4096 endpoints, 16384 links) under
/// uniform traffic in the stable regime. Pins the windowed engine's
/// throughput where the per-window batches are wide enough for the SIMD
/// classification and arbitration kernels to matter.
void BM_PacketSimLargeP(benchmark::State& state) {
  const auto topo = net::make_mesh2d(64, 64, true);
  net::PacketSimConfig cfg;
  cfg.injection_rate = 0.002;
  cfg.warmup = 500;
  cfg.duration = 4000;
  std::int64_t delivered = 0;
  for (auto _ : state) {
    const auto r = net::run_packet_sim(*topo, cfg);
    delivered = r.delivered;
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * delivered);
}
BENCHMARK(BM_PacketSimLargeP);

/// Bounded-lag parallel packet simulator on a workload big enough to
/// amortize window dispatch: 32x32 torus (1024 endpoints, 4096 links)
/// in the stable regime. Thread count comes from LOGP_SIM_THREADS (default
/// 4) rather than an Arg so the benchmark NAME is identical across
/// snapshots — tools/bench_record.py --compare can then gate the parallel
/// engine against a serial (LOGP_SIM_THREADS=1) baseline of the same
/// benchmark. Results are byte-identical at every thread count; only
/// items/sec may move.
void BM_PacketSimPar(benchmark::State& state) {
  const char* env = std::getenv("LOGP_SIM_THREADS");
  const int sim_threads = env != nullptr ? std::atoi(env) : 4;
  const auto topo = net::make_mesh2d(32, 32, true);
  net::PacketSimConfig cfg;
  cfg.injection_rate = 0.01;
  cfg.warmup = 2000;
  cfg.duration = 10000;
  cfg.sim_threads = sim_threads;
  std::int64_t delivered = 0;
  for (auto _ : state) {
    const auto r = net::run_packet_sim(*topo, cfg);
    delivered = r.delivered;
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * delivered);
  state.counters["sim_threads"] = sim_threads;
}
BENCHMARK(BM_PacketSimPar);

/// Message + timed-call churn on the raw machine: proc 0 streams messages at
/// proc 1 while every completion schedules a short timed continuation, so
/// the message pool and the continuation pool recycle constantly. Items/sec
/// counts messages plus fired calls.
class ChurnHost final : public sim::Host {
 public:
  explicit ChurnHost(std::int64_t messages) : remaining_(messages) {}

  void attach(sim::Machine& m) { machine_ = &m; }
  std::int64_t calls_fired() const { return calls_fired_; }

  void on_startup(ProcId p) override {
    if (p == 0) next_send();
  }
  void on_compute_done(ProcId) override {}
  void on_send_done(ProcId) override {
    ++calls_scheduled_;
    machine_->schedule_call(machine_->now() + 1, [this] { ++calls_fired_; });
    next_send();
  }
  void on_accept_done(ProcId p, const sim::Message&) override {
    if (machine_->arrivals_pending(p) > 0) machine_->start_accept(p);
  }
  void on_message_arrived(ProcId p) override {
    if (machine_->cpu_idle(p)) machine_->start_accept(p);
  }

 private:
  void next_send() {
    if (remaining_-- <= 0) return;
    sim::Message m;
    m.dst = 1;
    m.push_word(static_cast<std::uint64_t>(remaining_));
    machine_->start_send(0, m);
  }

  sim::Machine* machine_ = nullptr;
  std::int64_t remaining_ = 0;
  std::int64_t calls_scheduled_ = 0;
  std::int64_t calls_fired_ = 0;
};

void BM_MachineChurn(benchmark::State& state) {
  const auto messages = static_cast<std::int64_t>(state.range(0));
  std::int64_t items = 0;
  for (auto _ : state) {
    sim::MachineConfig cfg;
    cfg.params = {6, 2, 4, 2};
    ChurnHost host(messages);
    sim::Machine machine(cfg, host);
    host.attach(machine);
    benchmark::DoNotOptimize(machine.run());
    items = machine.total_messages() + host.calls_fired();
  }
  state.SetItemsProcessed(state.iterations() * items);
}
BENCHMARK(BM_MachineChurn)->Arg(4000);

/// A fixed grid of ping-pong experiments pushed through the sweep harness;
/// items/sec is simulator events/sec summed over the grid. Arg = threads.
void BM_SweepThroughput(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kGridSize = 64;
  constexpr std::int64_t kRounds = 200;
  std::vector<exp::ExperimentSpec> specs;
  for (int i = 0; i < kGridSize; ++i) {
    exp::ExperimentSpec spec;
    spec.label = std::to_string(i);
    spec.config.params = {6 + i % 4, 2, 4, 2};
    spec.config.seed = 0x10c9 + static_cast<std::uint64_t>(i);
    spec.make_program = []() -> runtime::Program {
      return [](runtime::Ctx ctx) -> runtime::Task {
        return [](runtime::Ctx c, std::int64_t n) -> runtime::Task {
          for (std::int64_t i = 0; i < n; ++i) {
            if (c.proc() == 0) {
              co_await c.send(1, 1);
              (void)co_await c.recv(2);
            } else {
              (void)co_await c.recv(1);
              co_await c.send(0, 2);
            }
          }
        }(ctx, kRounds);
      };
    };
    specs.push_back(std::move(spec));
  }
  const exp::SweepRunner runner({threads});
  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto results = runner.run(specs);
    events = 0;
    for (const auto& r : results) events += r.events;
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events));
  state.counters["grid"] = kGridSize;
}
BENCHMARK(BM_SweepThroughput)
    ->Arg(1)
    ->Arg(4)
    ->Arg(static_cast<int>(std::thread::hardware_concurrency()))
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
