// Reproduces paper Figure 3: the optimal single-item broadcast.
//
// Prints (a) the exact worked example (P=8, L=6, g=4, o=2) with its
// processor-activity timeline, and (b) sweeps of broadcast completion time
// against P and against each LogP parameter, comparing the optimal tree with
// the linear and binomial baselines — both analytically and as executed on
// the discrete-event machine. The simulated sweep fans out across worker
// threads (`--threads N`); output is byte-identical for any thread count.
#include <iostream>
#include <memory>
#include <vector>

#include "core/broadcast_tree.hpp"
#include "exp/sweep.hpp"
#include "obs/cli.hpp"
#include "obs/metrics.hpp"
#include "runtime/collectives.hpp"
#include "trace/timeline.hpp"
#include "util/table.hpp"

namespace {

using namespace logp;

/// One grid point of the "completion vs P" sweep: the tree is shared
/// read-only; the value array is created per run inside the factory.
exp::ExperimentSpec broadcast_spec(const Params& prm) {
  auto tree = std::make_shared<const BroadcastTree>(optimal_broadcast_tree(prm));
  exp::ExperimentSpec spec;
  spec.label = std::to_string(prm.P);
  spec.config.params = prm;
  spec.make_program = [prm, tree]() -> runtime::Program {
    auto value =
        std::make_shared<std::vector<std::uint64_t>>(static_cast<std::size_t>(prm.P), 0);
    (*value)[0] = 1;
    return [tree, value](runtime::Ctx ctx) -> runtime::Task {
      return runtime::coll::broadcast_optimal(
          ctx, *tree, &(*value)[static_cast<std::size_t>(ctx.proc())]);
    };
  };
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = exp::threads_from_args(argc, argv);
  // The obs flags (--trace/--profile/--trace-json/--metrics-csv plus
  // --critical-path FILE and --whatif SPEC) apply to the worked example
  // below; all default off, keeping stdout byte-stable.
  const obs::ObsFlags obs_flags = obs::obs_from_args(argc, argv);
  if (const int rc = exp::reject_unknown_flags(
          argc, argv,
          "[--threads N] [--trace] [--profile] [--trace-json FILE] "
          "[--metrics-csv FILE] [--critical-path FILE] [--whatif SPEC]"))
    return rc;
  std::cout << "== Figure 3: optimal broadcast tree ==\n\n";

  const Params fig3{6, 2, 4, 8};
  const auto tree = optimal_broadcast_tree(fig3);
  std::cout << "Worked example " << fig3.to_string() << ":\n";
  for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
    const auto& n = tree.nodes[i];
    std::cout << "  P" << i
              << (n.parent < 0 ? std::string(": source")
                               : ": recv at t=" + std::to_string(n.recv_done) +
                                     " from P" + std::to_string(n.parent))
              << "\n";
  }
  std::cout << "completion t=" << tree.completion
            << "  (paper: last value received at time 24)\n\n";

  {
    obs::MetricsRegistry metrics;
    obs::CritPathRecorder critpath;
    sim::MachineConfig cfg;
    cfg.params = fig3;
    cfg.record_trace = true;
    if (!obs_flags.metrics_csv.empty()) cfg.metrics = &metrics;
    if (obs_flags.wants_critpath() || !obs_flags.trace_json.empty())
      cfg.critpath = &critpath;
    runtime::Scheduler sched(cfg);
    std::vector<std::uint64_t> value(8, 0);
    value[0] = 1;
    sched.set_program([&](runtime::Ctx ctx) -> runtime::Task {
      return runtime::coll::broadcast_optimal(
          ctx, tree, &value[static_cast<std::size_t>(ctx.proc())]);
    });
    sched.run();
    std::cout << trace::render_timeline(sched.machine().recorder(), 8) << '\n';
    obs::emit_machine_obs(obs_flags, sched.machine(), "fig3 worked example",
                          std::cout, &metrics, &critpath);
  }

  std::cout << "== Completion time vs P (CM-5 parameters, in us) ==\n\n";
  util::TablePrinter tp({"P", "optimal (analytic)", "optimal (simulated)",
                         "binomial", "linear", "opt fanout(root)"});
  const std::vector<int> ps = {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
  std::vector<exp::ExperimentSpec> specs;
  for (int P : ps) specs.push_back(broadcast_spec(Cm5::params(P)));
  const exp::SweepRunner runner({threads});
  const auto results = runner.run(specs);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const Params prm = Cm5::params(ps[i]);
    const auto t = optimal_broadcast_tree(prm);
    const double us = Cm5::kTickNs / 1000.0;
    tp.add_row({std::to_string(ps[i]), util::fmt(t.completion * us, 1),
                util::fmt(static_cast<double>(results[i].finish) * us, 1),
                util::fmt(binomial_broadcast_time(prm) * us, 1),
                util::fmt(linear_broadcast_time(prm) * us, 1),
                std::to_string(t.fanout(0))});
  }
  tp.print(std::cout);

  std::cout << "\n== Sensitivity at P=64 (base L=6, o=2, g=4; cycles) ==\n\n";
  util::TablePrinter sp({"variant", "L", "o", "g", "optimal", "binomial",
                         "linear"});
  const std::vector<std::pair<const char*, Params>> variants = {
      {"base", {6, 2, 4, 64}},     {"high latency", {24, 2, 4, 64}},
      {"high overhead", {6, 8, 8, 64}}, {"low bandwidth", {6, 2, 16, 64}},
      {"free comm (PRAM-ish)", {1, 0, 1, 64}}};
  for (const auto& [name, prm] : variants) {
    sp.add_row({name, std::to_string(prm.L), std::to_string(prm.o),
                std::to_string(prm.g),
                std::to_string(optimal_broadcast_time(prm)),
                std::to_string(binomial_broadcast_time(prm)),
                std::to_string(linear_broadcast_time(prm))});
  }
  sp.print(std::cout);
  std::cout << "\nThe optimal tree adapts its fan-out to L, o and g; the\n"
               "binomial shape is only optimal when the gap never binds.\n";
  return 0;
}
