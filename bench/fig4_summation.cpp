// Reproduces paper Figure 4: the optimal summation schedule.
//
// Prints the worked example (T=28, P=8, L=5, g=4, o=2), whose communication
// tree the paper draws, executes it on the machine (verifying the deadline
// is met exactly), and sweeps: inputs summable vs deadline, and time to sum
// n values vs P against the naive non-overlapping binomial baseline.
#include <iostream>
#include <vector>

#include "core/summation.hpp"
#include "exp/sweep.hpp"
#include "obs/cli.hpp"
#include "runtime/collectives.hpp"
#include "util/table.hpp"

namespace {

using namespace logp;

Cycles simulate(const Params& prm, const SumSchedule& sched_def,
                std::uint64_t* result, const obs::ObsFlags& flags) {
  sim::MachineConfig cfg;
  cfg.params = prm;
  cfg.record_trace = flags.wants_trace();
  runtime::Scheduler sched(cfg);
  sched.set_program([&](runtime::Ctx ctx) -> runtime::Task {
    return runtime::coll::reduce_optimal(
        ctx, sched_def, [](ProcId, std::int64_t) { return 1; }, result);
  });
  const Cycles end = sched.run();
  obs::emit_machine_obs(flags, sched.machine(), "fig4 worked example",
                        std::cout);
  return end;
}

}  // namespace

int main(int argc, char** argv) {
  // --trace / --profile / --trace-json FILE apply to the worked example.
  const obs::ObsFlags obs_flags = obs::obs_from_args(argc, argv);
  if (const int rc = exp::reject_unknown_flags(
          argc, argv,
          "[--trace] [--profile] [--trace-json FILE] [--metrics-csv FILE]"))
    return rc;
  std::cout << "== Figure 4: optimal summation ==\n\n";

  const Params fig4{5, 2, 4, 8};
  const auto s = optimal_sum_schedule(28, fig4);
  std::cout << "Worked example T=28, " << fig4.to_string() << ":\n";
  for (std::size_t i = 0; i < s.nodes.size(); ++i) {
    const auto& n = s.nodes[i];
    std::cout << "  P" << i << ": completes partial sum at t=" << n.budget
              << ", " << n.local_inputs << " local inputs";
    if (n.parent >= 0) std::cout << ", sends to P" << n.parent;
    std::cout << '\n';
  }
  std::cout << "total inputs: " << s.total_inputs
            << " (paper draws node completion times 28/18/14/10/6/8/4/4)\n";

  std::uint64_t result = 0;
  const Cycles end = simulate(fig4, s, &result, obs_flags);
  std::cout << "simulated: sum of " << result << " inputs finished at t="
            << end << (end == 28 ? " — meets the deadline exactly\n\n"
                                 : " — DEADLINE MISSED\n\n");

  std::cout << "== Inputs summable within deadline T (P=1024, Fig-4 params) ==\n\n";
  util::TablePrinter tp({"T", "optimal inputs", "single-proc inputs",
                         "processors used"});
  Params big = fig4;
  big.P = 1024;
  for (Cycles T : {8, 16, 24, 32, 48, 64, 96, 128}) {
    const auto sched = optimal_sum_schedule(T, big);
    tp.add_row({std::to_string(T), util::fmt_count(sched.total_inputs),
                util::fmt_count(T + 1), std::to_string(sched.procs_used())});
  }
  tp.print(std::cout);

  std::cout << "\n== Time to sum n values (Fig-4 params; cycles) ==\n\n";
  util::TablePrinter np({"n", "P", "optimal", "naive binomial", "speedup"});
  for (std::int64_t n : {256, 1024, 4096, 16384}) {
    for (int P : {8, 64, 512}) {
      Params prm = fig4;
      prm.P = P;
      const Cycles opt = optimal_sum_time(n, prm);
      const Cycles naive = naive_sum_time(n, prm);
      np.add_row({util::fmt_count(n), std::to_string(P),
                  util::fmt_count(opt), util::fmt_count(naive),
                  util::fmt(double(naive) / double(opt), 2)});
    }
  }
  np.print(std::cout);
  std::cout << "\nThe optimal schedule overlaps local additions with the\n"
               "arrival of partial sums; inputs are deliberately unevenly\n"
               "distributed across processors.\n";
  return 0;
}
