// Reproduces paper Table 1: network timing parameters and the unloaded
// one-way time T(M=160) for a 1024-processor configuration of each machine,
// plus the LogP parameters the Section 5.2 recipe derives from them.
#include <iostream>

#include "machines/database.hpp"
#include "util/table.hpp"

int main() {
  using namespace logp;
  std::cout << "== Table 1: one-way message time without contention "
               "(1024 processors, M = 160 bits) ==\n\n";

  util::TablePrinter t({"Machine", "Network", "Cycle ns", "w bits",
                        "Tsnd+Trcv", "r", "avg H", "T(M=160)"});
  for (const auto& m : machines::table1()) {
    t.add_row({m.name, m.topology, util::fmt(m.cycle_ns, 0),
               std::to_string(m.width_bits), util::fmt_count(m.snd_rcv),
               util::fmt_count(m.hop_delay), util::fmt(m.avg_hops_1024, 1),
               util::fmt(m.unloaded_time(160, m.avg_hops_1024), 0)});
  }
  t.print(std::cout);

  std::cout << "\npaper reports: 6760, 3714, 53, 60, 30, 1360, 246 cycles\n";

  std::cout << "\n== LogP parameters derived per Section 5.2 "
               "(o = (Tsnd+Trcv)/2, L = H*r + M/w, g from bisection BW) ==\n\n";
  util::TablePrinter d({"Machine", "L", "o", "g", "capacity L/g"});
  for (const auto& m : machines::table1()) {
    const Params prm = m.derive_logp(160, m.avg_hops_1024, 1024);
    d.add_row({m.name, util::fmt_count(prm.L), util::fmt_count(prm.o),
               util::fmt_count(prm.g), util::fmt_count(prm.capacity())});
  }
  d.print(std::cout);
  std::cout << "\nNote how overhead dominates the commercial send/receive\n"
               "stacks (nCUBE/2, CM-5) while the research machines and the\n"
               "Active Message layers shrink o toward the wire time.\n";
  return 0;
}
