// Explores the paper's Section 5.6 extension: "provide multiple g's, where
// the one appropriate to the particular communication pattern is used in
// the analysis." We measure, per traffic pattern, the throughput a network
// actually sustains (packet-level, with link contention) and express it as
// an effective per-pattern gap g_pattern = 1 / throughput — the number an
// analysis should plug in for that pattern.
#include <iostream>
#include <memory>
#include <vector>

#include "exp/sweep.hpp"
#include "net/packet_sim.hpp"
#include "net/topology.hpp"
#include "util/table.hpp"

namespace {

using namespace logp;

// Saturation throughput: raise load until delivered/cycle stops following
// offered load; report the best sustained rate.
double saturation_throughput(const net::Topology& topo,
                             net::TrafficPattern pattern, int sim_threads) {
  net::PacketSimConfig cfg;
  cfg.pattern = pattern;
  cfg.duration = 15000;
  cfg.drain_limit = 120000;
  cfg.sim_threads = sim_threads;
  double best = 0;
  for (double load = 0.002; load <= 0.26; load *= 2) {
    cfg.injection_rate = load;
    const auto r = net::run_packet_sim(topo, cfg);
    best = std::max(best, r.throughput);
    if (r.saturated || r.throughput < 0.7 * load) break;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  // The doubling search is sequential (each topology's loads build on the
  // previous verdict), so intra-simulation threads are the only parallelism
  // here; output is byte-identical for any --sim-threads value.
  const int sim_threads = exp::sim_threads_from_args(argc, argv);
  if (const int rc = exp::reject_unknown_flags(argc, argv, "[--sim-threads N]"))
    return rc;
  std::cout << "== Section 5.6: one network, many effective g's ==\n"
               "(saturation throughput per traffic pattern; effective gap\n"
               " g_pat = 1/throughput, in cycles per packet per node)\n\n";

  std::vector<std::unique_ptr<net::Topology>> topos;
  topos.push_back(net::make_mesh2d(8, 8, true));
  topos.push_back(net::make_hypercube(64));
  topos.push_back(net::make_butterfly(64));

  const net::TrafficPattern patterns[] = {
      net::TrafficPattern::kNeighbor, net::TrafficPattern::kUniform,
      net::TrafficPattern::kTranspose, net::TrafficPattern::kBitReverse,
      net::TrafficPattern::kHotspot};

  for (const auto& topo : topos) {
    std::cout << "-- " << topo->name() << " --\n";
    util::TablePrinter tp({"pattern", "sat. throughput", "effective g",
                           "vs uniform"});
    const double uni =
        saturation_throughput(*topo, net::TrafficPattern::kUniform,
                              sim_threads);
    for (const auto pat : patterns) {
      const double thr = saturation_throughput(*topo, pat, sim_threads);
      tp.add_row({net::traffic_pattern_name(pat), util::fmt(thr, 4),
                  util::fmt(thr > 0 ? 1.0 / thr : 0.0, 1),
                  util::fmt(thr / uni, 2)});
    }
    tp.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Contention-free patterns (neighbor) sustain several times\n"
               "the bandwidth of adversarial ones (hotspot, bit-reverse on\n"
               "a butterfly); a single g is a compromise, and an analysis\n"
               "may substitute the pattern's own g as the paper suggests.\n";
  return 0;
}
