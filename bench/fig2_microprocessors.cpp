// Reproduces paper Figure 2: state-of-the-art microprocessor performance
// 1987-1992 (SPEC ratings relative to the VAX-11/780) and the growth rates
// the paper quotes: ~97%/year floating point, ~54%/year integer. This is
// the technology argument for LogP — processor speed outruns networks, so
// o and g stay significant.
//
// Pure data + least-squares fit; the figure's machines, read from the plot.
#include <cmath>
#include <iostream>
#include <vector>

#include "util/table.hpp"

namespace {

struct Chip {
  const char* name;
  double year;
  double integer;  // x VAX-11/780
  double fp;
};

// Approximate readings of the paper's Figure 2 data points.
const Chip kChips[] = {
    {"Sun 4/260", 1987.0, 9, 6},       {"MIPS M/120", 1988.5, 13, 10},
    {"MIPS M2000", 1989.5, 18, 18},    {"IBM RS6000/540", 1990.5, 24, 44},
    {"HP 9000/750", 1991.5, 51, 77},   {"DEC alpha", 1992.5, 80, 140},
};

// Least-squares fit of log(perf) vs year; returns annual growth factor.
double growth(double Chip::*field) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (const auto& c : kChips) {
    const double x = c.year - 1987.0;
    const double y = std::log(c.*field);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  return std::exp(slope);
}

}  // namespace

int main() {
  using namespace logp;
  std::cout << "== Figure 2: microprocessor performance, 1987-1992 ==\n\n";
  util::TablePrinter tp({"machine", "year", "integer (xVAX)", "FP (xVAX)"});
  for (const auto& c : kChips)
    tp.add_row({c.name, util::fmt(c.year, 1), util::fmt(c.integer, 0),
                util::fmt(c.fp, 0)});
  tp.print(std::cout);

  const double gi = growth(&Chip::integer);
  const double gf = growth(&Chip::fp);
  std::cout << "\nfitted annual growth: integer " << util::fmt((gi - 1) * 100, 0)
            << "%/year, floating point " << util::fmt((gf - 1) * 100, 0)
            << "%/year\npaper: integer ~54%/year, floating point ~97%/year\n"
            << "\nThe point: processors improve faster than network\n"
               "interfaces, so latency and overhead stay significant —\n"
               "the premise of the whole model.\n";
  return 0;
}
