// Reproduces the Section 4.2.1 LU decomposition study: the four data
// layouts' communication volume and load balance, simulated end-to-end
// (every elimination step really broadcasts multipliers/pivot rows through
// the machine and charges the exact update work each processor owns).
#include <iostream>

#include "algo/lu.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace logp;
  std::cout << "== Section 4.2.1: LU decomposition layouts ==\n\n";

  const Params prm{20, 4, 8, 16};  // generic machine, P = 16 (4x4 grid)
  for (const std::int64_t n : {64, 128, 256}) {
    std::cout << "-- n = " << n << ", " << prm.to_string() << " --\n";
    util::TablePrinter tp({"layout", "total (kcyc)", "messages",
                           "busy frac", "comm words/step(k=0)",
                           "vs scattered"});
    algo::LuSimConfig cfg;
    cfg.n = n;
    cfg.layout = LuLayout::kGridScattered;
    const auto best = algo::run_lu_sim(prm, cfg);
    for (const auto layout :
         {LuLayout::kBadScatter, LuLayout::kColumnCyclic,
          LuLayout::kGridBlocked, LuLayout::kGridScattered}) {
      cfg.layout = layout;
      const auto r = algo::run_lu_sim(prm, cfg);
      // First-step per-processor receive volume, from the paper's formulas.
      std::int64_t words0 = 0;
      switch (layout) {
        case LuLayout::kBadScatter: words0 = 2 * (n - 1); break;
        case LuLayout::kColumnCyclic: words0 = n - 1; break;
        default: words0 = 2 * (n - 1) / 4; break;  // sqrt(P) = 4
      }
      tp.add_row({lu_layout_name(layout), util::fmt(double(r.total) / 1e3, 1),
                  util::fmt_count(r.messages), util::fmt(r.busy_fraction, 3),
                  util::fmt_count(words0),
                  util::fmt(double(r.total) / double(best.total), 2)});
    }
    tp.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "paper: the bad layout fetches the whole pivot row AND\n"
               "column (2(n-k) words); column layout halves that; a grid\n"
               "layout cuts it by sqrt(P); and the scattered (cyclic) grid\n"
               "keeps all processors active to the end where the blocked\n"
               "grid idles 2*sqrt(P) of them after n/sqrt(P) steps — the\n"
               "layout the fastest Linpack codes actually use.\n";
  return 0;
}
