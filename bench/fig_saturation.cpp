// Reproduces the Section 5.3 observation (after Dally's k-ary n-cube
// studies): message latency is nearly flat in offered load up to a
// saturation point, beyond which it diverges. LogP abstracts this by
// treating L as a constant and *excluding* the saturated regime via the
// ceil(L/g) capacity constraint.
//
// Packet-level simulation with link contention on several topologies;
// uniform random traffic; store-and-forward with r = 2 cycles of routing
// and 10 cycles of serialization per hop. The (topology, load) grid runs
// through the sweep harness (`--threads N`); every simulation owns its RNG
// and is seeded by configuration, so output is byte-identical for any
// thread count.
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "exp/sweep.hpp"
#include "net/packet_sim.hpp"
#include "net/topology.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/cli.hpp"
#include "obs/net_telemetry.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

/// Re-runs one (topology, load) point with a telemetry sink and prints what
/// the summary table cannot show: which links pin at 100% busy beyond the
/// knee, and how network occupancy compares with the LogP capacity bound.
/// Re-running is cheap and keeps the sweep itself sink-free (a parallel
/// sweep must not share observers).
void profile_point(const logp::net::Topology& topo, double load,
                   int sim_threads, logp::obs::ChromeTraceWriter* trace_writer,
                   int pid) {
  using namespace logp;
  net::PacketSimConfig cfg;
  cfg.duration = 30000;
  cfg.injection_rate = load;
  cfg.sim_threads = sim_threads;
  obs::NetTelemetry telem;
  telem.sample_every = 500;
  cfg.telemetry = &telem;
  const auto r = net::run_packet_sim(topo, cfg);

  std::cout << "-- telemetry: " << topo.name() << " @ load " << util::fmt(load, 4)
            << (r.saturated ? " (SATURATED)" : "") << " --\n"
            << "max link utilization " << util::fmt(telem.max_utilization(), 3)
            << ", total queue wait " << util::fmt_count(telem.total_queue_wait())
            << " cycles, worst backlog " << telem.max_backlog()
            << " packets, peak in-flight " << r.peak_in_flight << "\n"
            << telem.render_links_table(8) << '\n';
  if (trace_writer != nullptr) {
    trace_writer->add_counter(
        topo.name() + " in-flight @ " + util::fmt(load, 4), telem.in_flight,
        pid);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logp;
  const int threads = exp::threads_from_args(argc, argv);
  // Intra-simulation threads for the bounded-lag engine. Output — including
  // the --profile telemetry — is byte-identical for any value (CI diffs
  // --sim-threads 1 against 4); only wall-clock time changes.
  const int sim_threads = exp::sim_threads_from_args(argc, argv);
  // --profile re-runs an exemplar stable and saturated grid point with link
  // telemetry; --trace-json FILE writes their in-flight occupancy as Chrome
  // trace counter tracks. Defaults off: the summary tables stay byte-stable.
  const obs::ObsFlags obs_flags = obs::obs_from_args(argc, argv);
  if (const int rc = exp::reject_unknown_flags(
          argc, argv,
          "[--threads N] [--sim-threads N] [--trace] [--profile] "
          "[--trace-json FILE] [--metrics-csv FILE]"))
    return rc;
  std::cout << "== Section 5.3: latency vs offered load (packet-level) ==\n\n";

  std::vector<std::unique_ptr<net::Topology>> topos;
  topos.push_back(net::make_hypercube(64));
  topos.push_back(net::make_mesh2d(8, 8, true));
  topos.push_back(net::make_mesh2d(8, 8, false));
  topos.push_back(net::make_fat_tree4(64, 2));

  const std::vector<double> loads = {0.0005, 0.001, 0.002, 0.004,
                                     0.008,  0.016, 0.032, 0.064};

  // One job per (topology, load) point. Topologies are routed through const
  // methods only, so sharing them read-only across workers is safe.
  std::vector<std::function<net::PacketSimResult()>> jobs;
  for (const auto& topo : topos)
    for (const double load : loads)
      jobs.push_back([&topo, load, sim_threads] {
        net::PacketSimConfig cfg;
        cfg.duration = 30000;
        cfg.injection_rate = load;
        cfg.sim_threads = sim_threads;
        return net::run_packet_sim(*topo, cfg);
      });
  // Declare the intra-job parallelism so outer x inner stays within the
  // machine (the explicit nesting policy of SweepOptions).
  const exp::SweepRunner runner({threads, sim_threads});
  const auto results = runner.map(jobs);

  std::size_t job = 0;
  for (const auto& topo : topos) {
    net::PacketSimConfig cfg;
    cfg.duration = 30000;
    const double unloaded =
        net::unloaded_packet_time(cfg, topo->average_distance());
    std::cout << "-- " << topo->name() << " (unloaded ~" << util::fmt(unloaded, 0)
              << " cycles) --\n";
    util::TablePrinter tp({"load (pkt/node/cyc)", "mean latency",
                           "p95 latency", "throughput", "state"});
    for (const double load : loads) {
      const auto& r = results[job++];
      if (r.truncated)
        std::fprintf(stderr,
                     "warning: %s @ load %g gave up draining with %lld "
                     "packets still in flight; latency/throughput understate "
                     "congestion\n",
                     topo->name().c_str(), load,
                     static_cast<long long>(r.undrained));
      tp.add_row({util::fmt(load, 4), util::fmt(r.latency.mean(), 0),
                  util::fmt(r.p95_latency, 0), util::fmt(r.throughput, 4),
                  r.saturated ? "SATURATED"
                  : r.latency.mean() > 2 * unloaded ? "congested"
                                                    : "stable"});
    }
    tp.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Below saturation latency is insensitive to load — modelling\n"
               "it as the constant L is sound; the LogP capacity constraint\n"
               "(at most ceil(L/g) messages per endpoint) is what keeps\n"
               "programs out of the divergent regime.\n";

  if (obs_flags.profile || !obs_flags.trace_json.empty()) {
    // The 8x8 mesh (no torus) has the sharpest knee in the grid above:
    // profile it just below (0.008) and beyond (0.064) the saturation point.
    obs::ChromeTraceWriter writer;
    obs::ChromeTraceWriter* w =
        obs_flags.trace_json.empty() ? nullptr : &writer;
    const auto mesh = net::make_mesh2d(8, 8, false);
    std::cout << '\n';
    profile_point(*mesh, 0.008, sim_threads, w, 0);
    profile_point(*mesh, 0.064, sim_threads, w, 1);
    std::cout << "The knee is a link story: at 0.064 the mesh's center links\n"
                 "run pinned at ~100% busy and queue wait dominates latency,\n"
                 "while at 0.008 every link still serves arrivals promptly.\n";
    if (w != nullptr) obs::write_file(obs_flags.trace_json, writer.str());
  }
  return 0;
}
