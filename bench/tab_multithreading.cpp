// Reproduces the Section 3.2 discussion: remote reads cost 2L + 4o, and
// multithreading masks latency only within the network's pipelining limits
// — issue slots every max(g, 2o) and the bandwidth-delay product of
// outstanding requests; beyond that extra virtual processors buy nothing.
#include <algorithm>
#include <iostream>

#include "algo/remote_read.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace logp;
  std::cout << "== Section 3.2: remote reads and multithreading ==\n\n";

  std::cout << "-- dependent remote reads: cycles per read vs 2L + 4o --\n";
  util::TablePrinter rp({"machine", "L", "o", "g", "measured", "2L+4o"});
  for (const Params prm : {Params{6, 2, 4, 2}, Params{20, 5, 8, 2},
                           Params{200, 66, 132, 2}, Params{114, 66, 160, 2}}) {
    const auto r = algo::run_dependent_reads(prm, 200);
    rp.add_row({prm.to_string(), std::to_string(prm.L), std::to_string(prm.o),
                std::to_string(prm.g), util::fmt(r.cycles_per_read(), 1),
                std::to_string(prm.remote_read_time())});
  }
  rp.print(std::cout);

  std::cout << "\n-- multithreaded reads: throughput vs virtual processors --\n";
  const Params prm{128, 2, 8, 2};
  const double bound =
      1.0 / double(std::max<Cycles>(prm.g, 2 * prm.o));
  const double knee = double(prm.remote_read_time()) / double(prm.g);
  std::cout << "machine " << prm.to_string() << ": capacity L/g = "
            << prm.capacity() << ", service bound = " << util::fmt(bound, 4)
            << " reads/cycle, knee ~ RTT/g = " << util::fmt(knee, 1)
            << " threads\n\n";
  util::TablePrinter tp({"vthreads", "reads/kcycle", "of bound", "speedup"});
  double first = 0;
  for (const int v : {1, 2, 4, 8, 16, 32, 48, 64, 128}) {
    const auto r = algo::run_multithreaded_reads(prm, v, 50);
    const double rate = double(r.reads) / double(r.total);
    if (v == 1) first = rate;
    tp.add_row({std::to_string(v), util::fmt(rate * 1000, 2),
                util::fmt(rate / bound, 2), util::fmt(rate / first, 1)});
  }
  tp.print(std::cout);

  std::cout << "\nThroughput scales with threads while latency is being\n"
               "masked, then saturates at the overhead/gap service bound;\n"
               "the model's point: multithreading is limited by o, g and\n"
               "the capacity constraint, not a free PRAM-style trick.\n";
  return 0;
}
