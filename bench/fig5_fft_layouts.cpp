// Reproduces the Section 4.1.1 layout analysis illustrated by paper
// Figure 5: remote references and communication time for the cyclic,
// blocked and hybrid butterfly layouts — the hybrid's single all-to-all
// cuts communication by a factor of log P.
//
// The (P, n, layout) grid is evaluated through the sweep harness
// (`--threads N`); rows are merged in grid order, so the output is
// byte-identical for any thread count.
#include <functional>
#include <iostream>
#include <vector>

#include "core/fft_cost.hpp"
#include "exp/sweep.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace logp;
  const int threads = exp::threads_from_args(argc, argv);
  if (const int rc = exp::reject_unknown_flags(argc, argv, "[--threads N]"))
    return rc;
  std::cout << "== Figure 5 / Section 4.1.1: FFT data layouts ==\n"
               "(CM-5 parameters; per-processor remote references and LogP\n"
               " communication time; compute is layout-independent)\n\n";

  const std::vector<int> ps = {16, 128};
  const std::vector<std::int64_t> ns = {std::int64_t{1} << 14,
                                        std::int64_t{1} << 18,
                                        std::int64_t{1} << 22};
  const std::vector<FftLayout> layouts = {FftLayout::kCyclic,
                                          FftLayout::kBlocked,
                                          FftLayout::kHybrid};

  // One job per (P, n) grid point; each evaluates all three layouts so the
  // "vs hybrid" column has its baseline in hand.
  struct Point {
    FftCost cost[3];
  };
  std::vector<std::function<Point()>> jobs;
  for (int P : ps)
    for (std::int64_t n : ns)
      jobs.push_back([P, n, &layouts] {
        const Params prm = Cm5::params(P);
        Point pt;
        for (std::size_t l = 0; l < layouts.size(); ++l)
          pt.cost[l] = fft_cost(n, layouts[l], prm, Cm5::kButterflyTicks);
        return pt;
      });
  const exp::SweepRunner runner({threads});
  const auto points = runner.map(jobs);

  std::size_t job = 0;
  for (int P : ps) {
    std::cout << "-- P = " << P << " --\n";
    util::TablePrinter tp({"n", "layout", "remote refs/proc", "comm (us)",
                           "compute (us)", "comm/total", "vs hybrid"});
    for (std::size_t ni = 0; ni < ns.size(); ++ni, ++job) {
      const Point& pt = points[job];
      const FftCost& hybrid = pt.cost[2];
      for (std::size_t l = 0; l < layouts.size(); ++l) {
        const FftCost& c = pt.cost[l];
        const char* name = layouts[l] == FftLayout::kCyclic    ? "cyclic"
                           : layouts[l] == FftLayout::kBlocked ? "blocked"
                                                               : "hybrid";
        const double us = Cm5::kTickNs / 1000.0;
        tp.add_row(
            {util::fmt_pow2(ns[ni]), name, util::fmt_count(c.remote_refs),
             util::fmt(double(c.communicate) * us, 0),
             util::fmt(double(c.compute) * us, 0),
             util::fmt(double(c.communicate) / double(c.total()), 3),
             util::fmt(double(c.communicate) / double(hybrid.communicate), 2)});
      }
    }
    tp.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Hybrid = cyclic phase, one remap, blocked phase; its\n"
               "communication advantage is the factor log2(P) the paper\n"
               "derives, and the total is within (1 + g/log n) of optimal.\n";
  return 0;
}
