// Reproduces the Section 4.1.1 layout analysis illustrated by paper
// Figure 5: remote references and communication time for the cyclic,
// blocked and hybrid butterfly layouts — the hybrid's single all-to-all
// cuts communication by a factor of log P.
#include <iostream>

#include "core/fft_cost.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace logp;
  std::cout << "== Figure 5 / Section 4.1.1: FFT data layouts ==\n"
               "(CM-5 parameters; per-processor remote references and LogP\n"
               " communication time; compute is layout-independent)\n\n";

  for (int P : {16, 128}) {
    const Params prm = Cm5::params(P);
    std::cout << "-- P = " << P << " --\n";
    util::TablePrinter tp({"n", "layout", "remote refs/proc", "comm (us)",
                           "compute (us)", "comm/total", "vs hybrid"});
    for (std::int64_t n :
         {std::int64_t{1} << 14, std::int64_t{1} << 18, std::int64_t{1} << 22}) {
      const auto hybrid = fft_cost(n, FftLayout::kHybrid, prm,
                                   Cm5::kButterflyTicks);
      for (const auto layout :
           {FftLayout::kCyclic, FftLayout::kBlocked, FftLayout::kHybrid}) {
        const auto c = fft_cost(n, layout, prm, Cm5::kButterflyTicks);
        const char* name = layout == FftLayout::kCyclic    ? "cyclic"
                           : layout == FftLayout::kBlocked ? "blocked"
                                                           : "hybrid";
        const double us = Cm5::kTickNs / 1000.0;
        tp.add_row(
            {util::fmt_pow2(n), name, util::fmt_count(c.remote_refs),
             util::fmt(double(c.communicate) * us, 0),
             util::fmt(double(c.compute) * us, 0),
             util::fmt(double(c.communicate) / double(c.total()), 3),
             util::fmt(double(c.communicate) / double(hybrid.communicate), 2)});
      }
    }
    tp.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Hybrid = cyclic phase, one remap, blocked phase; its\n"
               "communication advantage is the factor log2(P) the paper\n"
               "derives, and the total is within (1 + g/log n) of optimal.\n";
  return 0;
}
