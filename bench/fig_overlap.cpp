// Paper Section 4.1.5: overlapping communication with computation.
//
// "In future machines we expect architectural innovations ... to
//  significantly reduce the value of o with respect to g. ... If o is small
//  compared to g, each processor idles for g - 2o cycles between successive
//  transmissions during the remap. The remap can be merged into the
//  computation phases ... Unless g is extremely large, this eliminates
//  idling of processors during remap."
//
// We sweep o downward from the CM-5's value and compare the sequential
// hybrid FFT with the merged (overlap_remap) variant.
#include <iostream>

#include "algo/fft.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace logp;
  const int P = 32;
  const std::int64_t n = 1 << 16;
  std::cout << "== Section 4.1.5: merging the remap into computation ==\n"
            << "(CM-5 otherwise: L=200, g=132 ticks; n=" << n << ", P=" << P
            << ")\n\n";

  util::TablePrinter tp({"o (ticks)", "idle/pt g-2o-ls", "sequential (Mcyc)",
                         "overlapped (Mcyc)", "saved", "saved/stage"});
  for (const Cycles o : {66, 40, 20, 8, 2}) {
    Params prm = Cm5::params(P);
    prm.o = o;
    algo::FftConfig seq, ovl;
    seq.n = ovl.n = n;
    seq.carry_data = ovl.carry_data = false;
    ovl.overlap_remap = true;
    const auto rs = algo::run_hybrid_fft(prm, seq);
    const auto ro = algo::run_hybrid_fft(prm, ovl);
    const Cycles idle =
        std::max<Cycles>(0, prm.g - 2 * o - seq.loadstore_cycles);
    const Cycles stage = (n / P / 2) * seq.butterfly_cycles;
    tp.add_row({std::to_string(o), std::to_string(idle),
                util::fmt(double(rs.total) / 1e6, 2),
                util::fmt(double(ro.total) / 1e6, 2),
                util::fmt(double(rs.total - ro.total) / 1e6, 2),
                util::fmt(double(rs.total - ro.total) / double(stage), 2)});
  }
  tp.print(std::cout);

  std::cout << "\nWith the CM-5's o = 66 the remap is already overhead-\n"
               "bound (2o + load/store > g) and merging buys nothing; as o\n"
               "shrinks, the merged schedule hides up to a full butterfly\n"
               "stage of computation inside the transmission gaps.\n";
  return 0;
}
