// Reproduces paper Figure 7: per-processor computation rate (Mflops) of the
// FFT's two local phases as the total problem size grows.
//
// Phase I is one big local FFT of n/P points under the cyclic layout; once
// its 16*(n/P) bytes exceed the node's 64 KB cache, every pass sweeps memory
// and the rate drops (paper: 2.8 -> 2.2 Mflops). Phase III is many small
// P-point FFTs under the blocked layout, which stay cache-resident.
//
// We drive the real address streams of both phases through the cache
// simulator (CM-5 node: 64 KB direct-mapped, 32-byte lines, write-through)
// and convert miss rates into Mflops with a fixed per-butterfly cost model.
#include <iostream>

#include "cache/cache.hpp"
#include "cache/fft_trace.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace logp;
  const std::int64_t P = 128;
  std::cout << "== Figure 7: Mflops per processor, P = " << P
            << ", 64 KB direct-mapped cache ==\n\n";

  cache::RateModel model;
  util::TablePrinter tp({"FFT points", "local points", "phase I Mflops",
                         "phase III Mflops", "I misses/bfly",
                         "III misses/bfly"});
  for (const std::int64_t n :
       {std::int64_t{1} << 17, std::int64_t{1} << 18, std::int64_t{1} << 19,
        std::int64_t{1} << 20, std::int64_t{1} << 21, std::int64_t{1} << 22,
        std::int64_t{1} << 23, std::int64_t{1} << 24}) {
    const std::int64_t local = n / P;
    cache::DirectMappedCache c1, c3;
    const auto phase1 = cache::trace_single_fft(c1, 0, local);
    const auto phase3 = cache::trace_many_ffts(c3, 0, P, local / P);
    tp.add_row({util::fmt_pow2(n), util::fmt_pow2(local),
                util::fmt(model.mflops(phase1), 2),
                util::fmt(model.mflops(phase3), 2),
                util::fmt(phase1.misses_per_butterfly, 3),
                util::fmt(phase3.misses_per_butterfly, 3)});
  }
  tp.print(std::cout);

  std::cout << "\npaper: phase I falls from ~2.8 to ~2.2 Mflops when the\n"
               "local FFT exceeds the 64 KB cache (n/P > 4 K points);\n"
               "phase III suffers less because each small FFT is resident.\n"
               "(CM-5 Linpack rate for one node: ~3.2 Mflops.)\n";
  return 0;
}
