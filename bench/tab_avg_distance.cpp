// Reproduces the Section 5.1 table: average route distance per topology,
// asymptotic formula evaluated at P = 1024 (as the paper prints it) next to
// the exact mean over all ordered pairs computed by walking the actual
// deterministic routes of our topology library.
#include <iostream>
#include <memory>
#include <vector>

#include "exp/sweep.hpp"
#include "net/topology.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace logp;
  // Fans the exact O(P^2) route walks over the shared ThreadPool; the
  // per-source subtotals are integers, so the table is byte-identical for
  // any --sim-threads value.
  const int sim_threads = exp::sim_threads_from_args(argc, argv);
  if (const int rc = exp::reject_unknown_flags(argc, argv, "[--sim-threads N]"))
    return rc;
  std::cout << "== Section 5.1: average distance between nodes ==\n\n";

  struct Row {
    const char* paper_name;
    const char* formula;
    std::unique_ptr<net::Topology> topo;
  };
  std::vector<Row> rows;
  rows.push_back({"Hypercube", "log2(p)/2", net::make_hypercube(1024)});
  rows.push_back({"Butterfly", "log2(p)", net::make_butterfly(1024)});
  rows.push_back({"Fattree", "2*log4(p) - 2/3", net::make_fat_tree4(1024)});
  rows.push_back({"3d Torus", "3/4 * p^(1/3)", net::make_mesh3d(8, 16, 8, true)});
  rows.push_back({"3d Mesh", "p^(1/3)", net::make_mesh3d(8, 16, 8, false)});
  rows.push_back({"2d Torus", "1/2 * p^(1/2)", net::make_mesh2d(32, 32, true)});
  rows.push_back({"2d Mesh", "2/3 * p^(1/2)", net::make_mesh2d(32, 32, false)});

  util::TablePrinter tp({"Network", "formula", "formula @1024",
                         "exact (routed)", "paper"});
  const std::vector<const char*> paper = {"5", "10", "9.33", "7.5",
                                          "10",  "16", "21"};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    tp.add_row({r.paper_name, r.formula,
                util::fmt(net::formula_avg_distance(r.paper_name, 1024), 2),
                util::fmt(r.topo->average_distance(sim_threads), 2),
                paper[i]});
  }
  tp.print(std::cout);

  std::cout << "\n(3D uses an 8x16x8 arrangement since 1024 is not a cube;\n"
               " formulas count ordered pairs including self, the exact\n"
               " column excludes self pairs — hence the small excess.)\n"
               "For configurations of practical interest the topologies\n"
               "differ by at most ~4x, and distance is a minor part of the\n"
               "total message time (see tab1_unloaded_time).\n";
  return 0;
}
