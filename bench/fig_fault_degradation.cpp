// Fault-degradation study: delivered bandwidth and effective latency of the
// packet network as the per-packet drop rate rises, with the loss repaired
// by deterministic retransmission (fault/fault.hpp retry machinery).
//
// LogP's L and g describe a healthy network. Under loss, an end-to-end
// reliable layer re-sends dropped packets, so the *effective* L seen by a
// delivered packet grows by retry timeouts, and the retransmit traffic
// competes for the same links — the saturation knee of the Section 5.3
// study moves left. This bench quantifies both on an 8x8 torus: a
// (drop rate x offered load) grid, every point byte-identical at any
// --sim-threads value because fault decisions are pure hashes of
// (plan seed, injection id, attempt).
//
// The grid doubles as the checkpoint/resume exemplar: with
// --checkpoint-dir D every completed point is published atomically
// (tmp + rename) as a small JSON manifest, `--crash-after N` aborts with
// exit code 3 after N freshly computed points (deterministic with
// --threads 1), and --resume re-runs only the missing points. The final
// stdout is byte-identical to an uninterrupted run — CI pins this by
// killing a sweep mid-flight and diffing.
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "exp/checkpoint.hpp"
#include "exp/sweep.hpp"
#include "fault/fault.hpp"
#include "net/packet_sim.hpp"
#include "net/topology.hpp"
#include "obs/cli.hpp"
#include "obs/metrics.hpp"
#include "obs/net_telemetry.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using logp::exp::KvFields;
using logp::net::PacketSimResult;

std::string encode_result(const PacketSimResult& r) {
  KvFields f;
  f.emplace_back("lat_n", logp::exp::kv_int(r.latency.count()));
  f.emplace_back("lat_mean", logp::exp::kv_double(r.latency.mean()));
  f.emplace_back("lat_m2", logp::exp::kv_double(r.latency.m2()));
  f.emplace_back("lat_sum", logp::exp::kv_double(r.latency.sum()));
  f.emplace_back("lat_min", logp::exp::kv_double(r.latency.min()));
  f.emplace_back("lat_max", logp::exp::kv_double(r.latency.max()));
  f.emplace_back("p95", logp::exp::kv_double(r.p95_latency));
  f.emplace_back("injected", logp::exp::kv_int(r.injected));
  f.emplace_back("delivered", logp::exp::kv_int(r.delivered));
  f.emplace_back("offered", logp::exp::kv_double(r.offered_load));
  f.emplace_back("throughput", logp::exp::kv_double(r.throughput));
  f.emplace_back("saturated", logp::exp::kv_int(r.saturated ? 1 : 0));
  f.emplace_back("truncated", logp::exp::kv_int(r.truncated ? 1 : 0));
  f.emplace_back("undrained", logp::exp::kv_int(r.undrained));
  f.emplace_back("dropped", logp::exp::kv_int(r.dropped));
  f.emplace_back("corrupted", logp::exp::kv_int(r.corrupted));
  f.emplace_back("retransmitted", logp::exp::kv_int(r.retransmitted));
  f.emplace_back("lost", logp::exp::kv_int(r.lost));
  f.emplace_back("peak_in_flight", logp::exp::kv_int(r.peak_in_flight));
  f.emplace_back("pool_slots", logp::exp::kv_int(r.pool_slots));
  return logp::exp::kv_encode(f);
}

PacketSimResult decode_result(const std::string& text) {
  namespace x = logp::exp;
  const KvFields f = x::kv_decode(text);
  PacketSimResult r;
  r.latency = logp::util::RunningStat::from_raw(
      x::kv_parse_int(x::kv_get(f, "lat_n")),
      x::kv_parse_double(x::kv_get(f, "lat_mean")),
      x::kv_parse_double(x::kv_get(f, "lat_m2")),
      x::kv_parse_double(x::kv_get(f, "lat_sum")),
      x::kv_parse_double(x::kv_get(f, "lat_min")),
      x::kv_parse_double(x::kv_get(f, "lat_max")));
  r.p95_latency = x::kv_parse_double(x::kv_get(f, "p95"));
  r.injected = x::kv_parse_int(x::kv_get(f, "injected"));
  r.delivered = x::kv_parse_int(x::kv_get(f, "delivered"));
  r.offered_load = x::kv_parse_double(x::kv_get(f, "offered"));
  r.throughput = x::kv_parse_double(x::kv_get(f, "throughput"));
  r.saturated = x::kv_parse_int(x::kv_get(f, "saturated")) != 0;
  r.truncated = x::kv_parse_int(x::kv_get(f, "truncated")) != 0;
  r.undrained = x::kv_parse_int(x::kv_get(f, "undrained"));
  r.dropped = x::kv_parse_int(x::kv_get(f, "dropped"));
  r.corrupted = x::kv_parse_int(x::kv_get(f, "corrupted"));
  r.retransmitted = x::kv_parse_int(x::kv_get(f, "retransmitted"));
  r.lost = x::kv_parse_int(x::kv_get(f, "lost"));
  r.peak_in_flight = x::kv_parse_int(x::kv_get(f, "peak_in_flight"));
  r.pool_slots = x::kv_parse_int(x::kv_get(f, "pool_slots"));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logp;
  const int threads = exp::threads_from_args(argc, argv);
  const int sim_threads = exp::sim_threads_from_args(argc, argv);
  const std::string ckpt_dir =
      exp::string_from_args(argc, argv, "--checkpoint-dir");
  const bool resume = exp::bool_from_args(argc, argv, "--resume");
  const int crash_after = exp::int_from_args(argc, argv, "--crash-after");
  // Packet-level obs subset (exemplar re-run after the grid; see below).
  const obs::ObsFlags obs_flags = obs::obs_from_args(argc, argv);
  if (const int rc = exp::reject_unknown_flags(
          argc, argv,
          "[--threads N] [--sim-threads N] [--checkpoint-dir DIR] [--resume] "
          "[--crash-after N] [--profile] [--trace-json FILE] "
          "[--metrics-csv FILE] [--links-csv FILE]"))
    return rc;
  if (const int rc = obs::reject_machine_only_flags(obs_flags, argv[0]))
    return rc;

  const auto torus = net::make_mesh2d(8, 8, true);
  const std::vector<double> drop_rates = {0.0,  0.005, 0.01,
                                          0.02, 0.05,  0.1};
  const std::vector<double> loads = {0.02, 0.04, 0.06, 0.065, 0.07, 0.08};
  // A point "delivers" its load when throughput tracks the offered rate to
  // within 3%; beyond the knee the gap grows without bound.
  const auto delivers = [](double throughput, double load) {
    return throughput >= 0.97 * load;
  };

  net::PacketSimConfig base;
  base.duration = 30000;
  base.sim_threads = sim_threads;
  const Cycles retry_timeout = 4 * net::lookahead(base);

  // One immutable plan per drop rate, built up front so the job lambdas can
  // hold stable pointers.
  std::vector<fault::FaultPlan> plans;
  plans.reserve(drop_rates.size());
  for (const double d : drop_rates) {
    fault::FaultPlan fp;
    fp.drop_rate = d;
    fp.retry_timeout = retry_timeout;
    fp.max_retries = 6;
    plans.push_back(fp);
  }

  std::vector<std::function<net::PacketSimResult()>> jobs;
  for (std::size_t di = 0; di < drop_rates.size(); ++di)
    for (const double load : loads) {
      const fault::FaultPlan* fp = &plans[di];
      jobs.push_back([&torus, fp, load, base] {
        net::PacketSimConfig cfg = base;
        cfg.injection_rate = load;
        cfg.faults = fp->empty() ? nullptr : fp;
        return net::run_packet_sim(*torus, cfg);
      });
    }

  const exp::SweepRunner runner({threads, sim_threads});
  std::vector<net::PacketSimResult> results;
  if (!ckpt_dir.empty()) {
    exp::CheckpointStore store(ckpt_dir, "fig_fault_degradation");
    if (!resume) store.clear();
    const std::function<void(int)> on_fresh = [crash_after](int fresh) {
      if (crash_after > 0 && fresh >= crash_after) {
        std::fprintf(stderr, "crash-after: aborting after %d fresh points\n",
                     fresh);
        std::exit(3);
      }
    };
    results = exp::map_checkpointed<net::PacketSimResult>(
        runner, jobs, &store, encode_result, decode_result, on_fresh);
  } else {
    results = runner.map(jobs);
  }

  std::cout << "== Fault degradation: drop rate vs delivered bandwidth "
               "(8x8 torus) ==\n\n"
            << "Dropped packets are retransmitted after " << retry_timeout
            << " cycles (up to 6 retries); every retry re-pays the full\n"
               "route, so loss shows up twice: as retry latency on the "
               "delivered\npackets (effective L) and as parasitic load on "
               "the links.\n\n";

  std::size_t job = 0;
  for (std::size_t di = 0; di < drop_rates.size(); ++di) {
    std::cout << "-- drop rate " << util::fmt(drop_rates[di], 3) << " --\n";
    util::TablePrinter tp({"load (pkt/node/cyc)", "throughput", "eff. L (mean)",
                           "p95", "retx/pkt", "lost", "state"});
    for (const double load : loads) {
      const auto& r = results[job++];
      if (r.truncated)
        std::fprintf(stderr,
                     "warning: point (drop=%g, load=%g) truncated with %lld "
                     "packets undrained; figures understate congestion\n",
                     drop_rates[di], load,
                     static_cast<long long>(r.undrained));
      const double retx_per_pkt =
          r.injected > 0 ? static_cast<double>(r.retransmitted) /
                               static_cast<double>(r.injected)
                         : 0.0;
      tp.add_row({util::fmt(load, 4), util::fmt(r.throughput, 4),
                  util::fmt(r.latency.mean(), 0), util::fmt(r.p95_latency, 0),
                  util::fmt(retx_per_pkt, 3), std::to_string(r.lost),
                  r.saturated          ? "SATURATED"
                  : delivers(r.throughput, load) ? "stable"
                                                 : "congested"});
    }
    tp.print(std::cout);
    std::cout << '\n';
  }

  // Knee summary: the highest load each drop rate still delivers in full,
  // and the delivered bandwidth at the top of the grid. Retransmit traffic
  // multiplies the carried load by roughly 1/(1 - drop), so the knee moves
  // left and the post-knee bandwidth falls as the drop rate rises.
  std::cout << "-- degradation knee --\n";
  util::TablePrinter knee({"drop rate", "knee load", "eff. L at knee",
                           "bandwidth @ " + util::fmt(loads.back(), 3)});
  for (std::size_t di = 0; di < drop_rates.size(); ++di) {
    double stable = 0.0;
    double eff_l = 0.0;
    for (std::size_t li = 0; li < loads.size(); ++li) {
      const auto& r = results[di * loads.size() + li];
      if (!r.saturated && delivers(r.throughput, loads[li])) {
        stable = loads[li];
        eff_l = r.latency.mean();
      }
    }
    knee.add_row({util::fmt(drop_rates[di], 3), util::fmt(stable, 4),
                  util::fmt(eff_l, 0),
                  util::fmt(results[di * loads.size() + loads.size() - 1]
                                .throughput,
                            4)});
  }
  knee.print(std::cout);
  std::cout << "\nDelivered bandwidth degrades monotonically with the drop\n"
               "rate: below the knee the retries only stretch the latency\n"
               "tail, beyond it the retransmit traffic itself tips the\n"
               "network into saturation.\n";

  if (obs_flags.any()) {
    // Exemplar: 2% loss at the pre-knee load 0.06 — lossy enough that the
    // retransmit counter track and per-link drop column are populated,
    // stable enough that utilization reads as load, not as saturation.
    // Re-run serially with the single-owner sinks attached; the grid
    // tables above stay byte-identical with the flags on or off.
    obs::NetTelemetry tel;
    tel.sample_every = 250;
    obs::MetricsRegistry metrics;
    net::PacketSimConfig cfg = base;
    cfg.injection_rate = 0.06;
    cfg.faults = &plans[3];  // drop_rates[3] == 0.02
    cfg.telemetry = &tel;
    cfg.metrics = &metrics;
    (void)net::run_packet_sim(*torus, cfg);
    obs::emit_packet_obs(obs_flags, tel, metrics, "drop=0.02 load=0.06",
                         std::cout);
  }
  return 0;
}
