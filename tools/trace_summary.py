#!/usr/bin/env python3
"""Summarize logp observability artifacts as per-phase breakdown tables.

Accepts any of the three machine-readable formats the obs layer emits and
autodetects which one it was given:

  * Chrome trace JSON   (bench --trace-json FILE): per-processor "X" slices
    are summed by activity; flow ("s"/"f") pairs are counted as messages.
  * activity-interval CSV (bench --trace, schema proc,begin,end,activity,peer
    — see DESIGN.md "Observability"): same accounting, straight from rows.
  * metrics registry JSON/CSV (obs::MetricsRegistry::to_json / to_csv):
    printed as a flat name/value table.

For interval inputs the output mirrors obs::LogPProfile::render_table():
one row per processor plus an aggregate, cycles and percent per activity,
with idle derived as horizon minus busy.

Usage:
    tools/trace_summary.py FILE [--top N]

--top N limits per-processor rows to the N busiest processors (0 = all),
which keeps wide-P traces readable.
"""

import argparse
import csv
import io
import json
import pathlib
import sys

ACTIVITIES = ["compute", "send-o", "recv-o", "gap", "stall"]


def render_table(headers, rows):
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = ["  ".join(str(h).rjust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def summarize_intervals(per_proc, horizon, top, messages=None):
    """per_proc: {proc: {activity: cycles}}; prints the breakdown table."""
    if not per_proc:
        print("no intervals found")
        return
    procs = sorted(per_proc)
    busiest = sorted(procs, key=lambda p: -sum(per_proc[p].values()))
    shown = set(busiest[:top]) if top else set(procs)

    def fmt_bucket(cycles):
        pct = 100.0 * cycles / horizon if horizon else 0.0
        return f"{cycles} ({pct:.1f}%)"

    headers = ["proc"] + ACTIVITIES + ["idle", "busy%"]
    rows = []
    total = {a: 0 for a in ACTIVITIES}
    for p in procs:
        buckets = per_proc[p]
        for a in ACTIVITIES:
            total[a] += buckets.get(a, 0)
        if p not in shown:
            continue
        busy = sum(buckets.values())
        row = [f"P{p}"] + [fmt_bucket(buckets.get(a, 0)) for a in ACTIVITIES]
        row.append(fmt_bucket(max(horizon - busy, 0)))
        row.append(f"{100.0 * busy / horizon:.1f}%" if horizon else "-")
        rows.append(row)
    if top and len(procs) > top:
        rows.append([f"... {len(procs) - top} more procs elided"] +
                    [""] * (len(headers) - 1))

    grand = horizon * len(procs)
    busy_all = sum(total.values())
    agg = ["all"]
    for a in ACTIVITIES:
        pct = 100.0 * total[a] / grand if grand else 0.0
        agg.append(f"{total[a]} ({pct:.1f}%)")
    idle = grand - busy_all
    agg.append(f"{idle} ({100.0 * idle / grand:.1f}%)" if grand else "0")
    agg.append(f"{100.0 * busy_all / grand:.1f}%" if grand else "-")
    rows.append(agg)

    print(f"LogP signature over {horizon} cycles x {len(procs)} procs:")
    print(render_table(headers, rows))
    if messages is not None:
        print(f"messages (flow pairs): {messages}")


def load_chrome(doc, top):
    per_proc = {}
    horizon = 0
    flows = 0
    counters = set()
    for ev in doc.get("traceEvents", []):
        ph = ev.get("ph")
        if ph == "s":
            flows += 1
        if ph == "C":
            counters.add(ev.get("name", "?"))
        if ph != "X":
            continue
        proc = int(ev.get("tid", 0))
        name = ev.get("name", "?")
        dur = int(ev.get("dur", 0))
        horizon = max(horizon, int(ev.get("ts", 0)) + dur)
        per_proc.setdefault(proc, {})
        per_proc[proc][name] = per_proc[proc].get(name, 0) + dur
    if not per_proc and counters:
        print("no processor slices; counter tracks only:")
        for name in sorted(counters):
            print(f"  {name}")
        return
    summarize_intervals(per_proc, horizon, top, messages=flows)


def load_trace_csv(text, top):
    per_proc = {}
    horizon = 0
    for row in csv.DictReader(io.StringIO(text)):
        try:
            proc = int(row["proc"])
            begin, end = int(row["begin"]), int(row["end"])
        except (TypeError, ValueError):
            break  # benches print tables after the CSV block; stop there
        horizon = max(horizon, end)
        per_proc.setdefault(proc, {})
        act = row["activity"]
        per_proc[proc][act] = per_proc[proc].get(act, 0) + (end - begin)
    summarize_intervals(per_proc, horizon, top)


def load_metrics_json(doc):
    rows = []
    for name, value in sorted(doc.get("counters", {}).items()):
        rows.append([name, "counter", value, ""])
    for name, g in sorted(doc.get("gauges", {}).items()):
        rows.append([name, "gauge", g["value"], g["max"]])
    for name, h in sorted(doc.get("histograms", {}).items()):
        rows.append([name, "histogram", h["count"],
                     f"sum={h['sum']:g} max={h['max']:g}"])
    print(render_table(["name", "type", "value", "max/detail"], rows))


def load_metrics_csv(text):
    rows = [[r["name"], r["type"], r["value"], r["max"]]
            for r in csv.DictReader(io.StringIO(text))]
    print(render_table(["name", "type", "value", "max"], rows))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("file", type=pathlib.Path,
                    help="Chrome trace JSON, trace CSV, or metrics JSON/CSV")
    ap.add_argument("--top", type=int, default=0,
                    help="show only the N busiest processors (0 = all)")
    args = ap.parse_args()

    text = args.file.read_text()
    first_line = text.split("\n", 1)[0].strip()
    if first_line.startswith("{"):
        doc = json.loads(text)
        if "traceEvents" in doc:
            load_chrome(doc, args.top)
        elif {"counters", "gauges", "histograms"} & doc.keys():
            load_metrics_json(doc)
        else:
            sys.exit(f"{args.file}: unrecognized JSON document")
    elif first_line == "proc,begin,end,activity,peer":
        load_trace_csv(text, args.top)
    elif first_line == "name,type,value,max,p50,p95":
        load_metrics_csv(text)
    else:
        sys.exit(f"{args.file}: unrecognized format (header {first_line!r})")


if __name__ == "__main__":
    main()
