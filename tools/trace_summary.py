#!/usr/bin/env python3
"""Summarize logp observability artifacts as per-phase breakdown tables.

Accepts any of the six machine-readable formats the obs layer emits and
autodetects which one it was given:

  * Chrome trace JSON   (bench --trace-json FILE): per-processor "X" slices
    are summed by activity; flow ("s"/"f") pairs are counted as messages.
  * activity-interval CSV (bench --trace, schema proc,begin,end,activity,peer
    — see DESIGN.md "Observability"): same accounting, straight from rows.
  * metrics registry JSON/CSV (obs::MetricsRegistry::to_json / to_csv):
    printed as a flat name/value table.
  * critical-path JSON  (bench --critical-path FILE, mc_check --dump-dir):
    finish attribution by edge kind and by rank, plus the top slack-ranked
    near-critical chains.
  * critical-path chain CSV (bench --critical-path FILE.csv, schema
    chain,slack,cycles,nodes,t0,t1,proc_lo,proc_hi): the chain table alone.
  * per-link telemetry CSV (obs::NetTelemetry::to_csv, bench --links-csv):
    utilization-ranked link table with the fault-path series — drops,
    retransmits, reroutes — plus machine-wide totals.

For interval inputs the output mirrors obs::LogPProfile::render_table():
one row per processor plus an aggregate, cycles and percent per activity,
with idle derived as horizon minus busy.

Usage:
    tools/trace_summary.py FILE [--top N]
    tools/trace_summary.py --self-check

--top N limits per-processor rows to the N busiest processors (0 = all),
which keeps wide-P traces readable; for critical-path inputs it bounds the
chain table (default 10). --self-check runs the embedded fixtures through
every loader and asserts on the rendered output (wired into ctest).
"""

import argparse
import csv
import io
import json
import pathlib
import sys

ACTIVITIES = ["compute", "send-o", "recv-o", "gap", "stall"]


def render_table(headers, rows):
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = ["  ".join(str(h).rjust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def summarize_intervals(per_proc, horizon, top, messages=None):
    """per_proc: {proc: {activity: cycles}}; prints the breakdown table."""
    if not per_proc:
        print("no intervals found")
        return
    procs = sorted(per_proc)
    busiest = sorted(procs, key=lambda p: -sum(per_proc[p].values()))
    shown = set(busiest[:top]) if top else set(procs)

    def fmt_bucket(cycles):
        pct = 100.0 * cycles / horizon if horizon else 0.0
        return f"{cycles} ({pct:.1f}%)"

    headers = ["proc"] + ACTIVITIES + ["idle", "busy%"]
    rows = []
    total = {a: 0 for a in ACTIVITIES}
    for p in procs:
        buckets = per_proc[p]
        for a in ACTIVITIES:
            total[a] += buckets.get(a, 0)
        if p not in shown:
            continue
        busy = sum(buckets.values())
        row = [f"P{p}"] + [fmt_bucket(buckets.get(a, 0)) for a in ACTIVITIES]
        row.append(fmt_bucket(max(horizon - busy, 0)))
        row.append(f"{100.0 * busy / horizon:.1f}%" if horizon else "-")
        rows.append(row)
    if top and len(procs) > top:
        rows.append([f"... {len(procs) - top} more procs elided"] +
                    [""] * (len(headers) - 1))

    grand = horizon * len(procs)
    busy_all = sum(total.values())
    agg = ["all"]
    for a in ACTIVITIES:
        pct = 100.0 * total[a] / grand if grand else 0.0
        agg.append(f"{total[a]} ({pct:.1f}%)")
    idle = grand - busy_all
    agg.append(f"{idle} ({100.0 * idle / grand:.1f}%)" if grand else "0")
    agg.append(f"{100.0 * busy_all / grand:.1f}%" if grand else "-")
    rows.append(agg)

    print(f"LogP signature over {horizon} cycles x {len(procs)} procs:")
    print(render_table(headers, rows))
    if messages is not None:
        print(f"messages (flow pairs): {messages}")


def load_chrome(doc, top):
    per_proc = {}
    horizon = 0
    flows = 0
    counters = set()
    for ev in doc.get("traceEvents", []):
        ph = ev.get("ph")
        if ph == "s":
            flows += 1
        if ph == "C":
            counters.add(ev.get("name", "?"))
        if ph != "X":
            continue
        proc = int(ev.get("tid", 0))
        name = ev.get("name", "?")
        dur = int(ev.get("dur", 0))
        horizon = max(horizon, int(ev.get("ts", 0)) + dur)
        per_proc.setdefault(proc, {})
        per_proc[proc][name] = per_proc[proc].get(name, 0) + dur
    if not per_proc and counters:
        print("no processor slices; counter tracks only:")
        for name in sorted(counters):
            print(f"  {name}")
        return
    summarize_intervals(per_proc, horizon, top, messages=flows)


def load_trace_csv(text, top):
    per_proc = {}
    horizon = 0
    for row in csv.DictReader(io.StringIO(text)):
        try:
            proc = int(row["proc"])
            begin, end = int(row["begin"]), int(row["end"])
        except (TypeError, ValueError):
            break  # benches print tables after the CSV block; stop there
        horizon = max(horizon, end)
        per_proc.setdefault(proc, {})
        act = row["activity"]
        per_proc[proc][act] = per_proc[proc].get(act, 0) + (end - begin)
    summarize_intervals(per_proc, horizon, top)


def load_metrics_json(doc):
    rows = []
    for name, value in sorted(doc.get("counters", {}).items()):
        rows.append([name, "counter", value, ""])
    for name, g in sorted(doc.get("gauges", {}).items()):
        rows.append([name, "gauge", g["value"], g["max"]])
    for name, h in sorted(doc.get("histograms", {}).items()):
        rows.append([name, "histogram", h["count"],
                     f"sum={h['sum']:g} max={h['max']:g}"])
    print(render_table(["name", "type", "value", "max/detail"], rows))


def load_metrics_csv(text):
    rows = [[r["name"], r["type"], r["value"], r["max"]]
            for r in csv.DictReader(io.StringIO(text))]
    print(render_table(["name", "type", "value", "max"], rows))


CRITPATH_CSV_HEADER = "chain,slack,cycles,nodes,t0,t1,proc_lo,proc_hi"


def print_chains(chains, top):
    """Slack-ranked near-critical chains (slack asc, then longest first)."""
    chains = sorted(chains,
                    key=lambda c: (int(c["slack"]), -int(c["cycles"])))
    shown = chains[:top] if top else chains
    rows = [[i, c["slack"], c["cycles"], c["nodes"], c["t0"], c["t1"],
             f"P{c['proc_lo']}" if c["proc_lo"] == c["proc_hi"]
             else f"P{c['proc_lo']}..P{c['proc_hi']}"]
            for i, c in enumerate(shown)]
    print(f"near-critical chains (top {len(shown)} of {len(chains)} "
          "by slack):")
    print(render_table(["chain", "slack", "cycles", "nodes", "t0", "t1",
                        "procs"], rows))


def load_critpath_json(doc, top):
    cp = doc["critical_path"]
    finish, buckets = cp["finish"], cp["buckets"]
    total = sum(buckets.values())
    print(f"critical path: finish {finish} cycles, {cp['nodes']} DAG nodes, "
          f"{len(cp.get('path', []))} path steps")
    rows = [[name, cyc, f"{100.0 * cyc / finish:.1f}%" if finish else "-"]
            for name, cyc in buckets.items()]
    print(render_table(["bucket", "cycles", "% of finish"], rows))
    # The telescoping invariant the C++ tests pin; surface a drift loudly.
    if total != finish:
        print(f"WARNING: bucket sum {total} != finish {finish}")
    ranks = [r for r in cp.get("per_rank", [])
             if any(v for k, v in r.items() if k != "rank")]
    if ranks:
        cols = [k for k in cp["per_rank"][0] if k != "rank"]
        print("per-rank attribution (ranks with critical-path cycles):")
        print(render_table(["rank"] + cols,
                           [[f"P{r['rank']}"] + [r[c] for c in cols]
                            for r in ranks]))
    if cp.get("chains"):
        print_chains(cp["chains"], top if top else 10)


def load_critpath_csv(text, top):
    print_chains(list(csv.DictReader(io.StringIO(text))), top if top else 10)


LINKS_CSV_HEADER = ("u,v,channels,packets,busy,utilization,queue_wait,"
                    "max_queue_wait,max_backlog,drops,retransmits,reroutes")


def load_links_csv(text, top):
    """Per-link telemetry with the fault-path series surfaced per row.

    Rows are re-ranked by utilization here (descending, then by endpoint)
    rather than trusting file order, mirroring the critical-path chain
    loader. drops/retransmits/reroutes are the columns a recovery run reads:
    a killed link shows drops on itself and reroutes on its detour.
    """
    links = list(csv.DictReader(io.StringIO(text)))
    if not links:
        print("no links found")
        return
    links.sort(key=lambda l: (-float(l["utilization"]),
                              int(l["u"]), int(l["v"])))
    shown = links[:top] if top else links
    rows = []
    for l in shown:
        name = f"{l['u']}->{l['v']}"
        if int(l["channels"]) > 1:
            name += f" x{l['channels']}"
        rows.append([name, f"{100.0 * float(l['utilization']):.1f}%",
                     l["packets"], l["queue_wait"], l["max_backlog"],
                     l["drops"], l["retransmits"], l["reroutes"]])
    totals = {k: sum(int(l[k]) for l in links)
              for k in ("packets", "drops", "retransmits", "reroutes")}
    faulted = sum(1 for l in links
                  if int(l["drops"]) or int(l["retransmits"])
                  or int(l["reroutes"]))
    print(f"link telemetry: {len(links)} links "
          f"({len(shown)} shown), {totals['packets']} packets, "
          f"totals: drops={totals['drops']} "
          f"retransmits={totals['retransmits']} "
          f"reroutes={totals['reroutes']} "
          f"({faulted} links on the fault path)")
    print(render_table(["link", "util", "packets", "queue wait",
                        "max backlog", "drops", "retransmits", "reroutes"],
                       rows))


def summarize(text, name, top):
    first_line = text.split("\n", 1)[0].strip()
    if first_line.startswith("{"):
        doc = json.loads(text)
        if "critical_path" in doc:
            load_critpath_json(doc, top)
        elif "traceEvents" in doc:
            load_chrome(doc, top)
        elif {"counters", "gauges", "histograms"} & doc.keys():
            load_metrics_json(doc)
        else:
            sys.exit(f"{name}: unrecognized JSON document")
    elif first_line == "proc,begin,end,activity,peer":
        load_trace_csv(text, top)
    elif first_line == "name,type,value,max,p50,p95":
        load_metrics_csv(text)
    elif first_line == CRITPATH_CSV_HEADER:
        load_critpath_csv(text, top)
    elif first_line == LINKS_CSV_HEADER:
        load_links_csv(text, top)
    else:
        sys.exit(f"{name}: unrecognized format (header {first_line!r})")


# ---- self-check fixtures: one minimal artifact per detected format ----

CRITPATH_JSON_FIXTURE = """\
{"critical_path": {
"finish": 24,
"nodes": 25,
"anchor_cycles": 0,
"buckets": {"compute":0,"send_o":4,"recv_o":4,"gap":4,"wire":12,"anchor":0},
"per_rank": [
{"rank":0,"compute":0,"send_o":2,"recv_o":0,"gap":4,"wire":0,"anchor":0},
{"rank":5,"compute":0,"send_o":2,"recv_o":4,"gap":0,"wire":12,"anchor":0}],
"path": [
{"proc":0,"kind":"send_engage","t":4,"edge":"gap","w":4},
{"proc":0,"kind":"send_ready","t":6,"edge":"send_o","w":2}],
"chains": [
{"slack":0,"cycles":24,"nodes":13,"t0":0,"t1":24,"proc_lo":0,"proc_hi":5},
{"slack":2,"cycles":18,"nodes":9,"t0":4,"t1":22,"proc_lo":1,"proc_hi":3}]
}}
"""

CRITPATH_CSV_FIXTURE = (CRITPATH_CSV_HEADER + "\n"
                        "0,0,24,13,0,24,0,5\n"
                        "1,2,18,9,4,22,1,3\n")

TRACE_CSV_FIXTURE = ("proc,begin,end,activity,peer\n"
                     "0,0,2,send-o,1\n"
                     "1,8,10,recv-o,0\n")

METRICS_CSV_FIXTURE = ("name,type,value,max,p50,p95\n"
                       "net.heap.spills,counter,3,,,\n"
                       "net.wheel.peak_bucket,gauge,17,17,,\n")

LINKS_CSV_FIXTURE = (LINKS_CSV_HEADER + "\n"
                     "2,3,1,40,400,0.2000,80,12,3,0,0,5\n"
                     "0,1,1,120,1200,0.6000,300,40,5,7,3,0\n"
                     "1,2,2,80,800,0.4000,100,10,2,0,0,0\n")

CHROME_FIXTURE = json.dumps({"traceEvents": [
    {"ph": "X", "tid": 0, "ts": 0, "dur": 2, "name": "send-o"},
    {"ph": "s", "id": 1, "ts": 2},
]})


def self_check():
    """Runs every loader on an embedded fixture, asserts on the output."""
    def capture(text, top=0):
        out = io.StringIO()
        stdout, sys.stdout = sys.stdout, out
        try:
            summarize(text, "<fixture>", top)
        finally:
            sys.stdout = stdout
        return out.getvalue()

    got = capture(CRITPATH_JSON_FIXTURE)
    assert "finish 24 cycles" in got, got
    assert "25 DAG nodes" in got, got
    assert "WARNING" not in got, got  # buckets sum exactly to finish
    assert "P0..P5" in got, got       # chain 0 spans the whole machine
    bad = CRITPATH_JSON_FIXTURE.replace('"wire":12', '"wire":11')
    assert "WARNING: bucket sum 23 != finish 24" in capture(bad)

    got = capture(CRITPATH_CSV_FIXTURE)
    assert "top 2 of 2" in got, got
    assert capture(CRITPATH_CSV_FIXTURE, top=1).count("P0..P5") == 1
    # Slack ranking is re-derived, not trusted: reversed rows, same order.
    lines = CRITPATH_CSV_FIXTURE.split("\n")
    reordered = "\n".join([lines[0], lines[2], lines[1]])
    assert got == capture(reordered), (got, capture(reordered))

    got = capture(TRACE_CSV_FIXTURE)
    assert "LogP signature over 10 cycles x 2 procs" in got, got

    got = capture(METRICS_CSV_FIXTURE)
    assert "net.heap.spills" in got and "counter" in got, got

    got = capture(LINKS_CSV_FIXTURE)
    assert "totals: drops=7 retransmits=3 reroutes=5" in got, got
    assert "2 links on the fault path" in got, got
    assert "1->2 x2" in got, got  # multi-channel links keep the xN suffix
    # Utilization ranking is re-derived from the rows, not trusted: the
    # 60%-utilized link leads even though the file lists it second.
    lines = [l for l in got.splitlines() if "->" in l]
    assert "0->1" in lines[0], got
    # --top bounds the rows but the totals still cover every link.
    got_top = capture(LINKS_CSV_FIXTURE, top=1)
    assert "(1 shown)" in got_top and "drops=7" in got_top, got_top
    assert "2->3" not in got_top, got_top

    got = capture(CHROME_FIXTURE)
    assert "messages (flow pairs): 1" in got, got

    print("trace_summary self-check: all formats OK")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("file", type=pathlib.Path, nargs="?",
                    help="Chrome trace JSON, trace CSV, metrics JSON/CSV, "
                         "or critical-path JSON/CSV")
    ap.add_argument("--top", type=int, default=0,
                    help="show only the N busiest processors / chains "
                         "(0 = all procs, 10 chains)")
    ap.add_argument("--self-check", action="store_true",
                    help="run the embedded format fixtures and exit")
    args = ap.parse_args()

    if args.self_check:
        self_check()
        return
    if args.file is None:
        ap.error("FILE is required unless --self-check")
    summarize(args.file.read_text(), str(args.file), args.top)


if __name__ == "__main__":
    main()
