#!/usr/bin/env python3
"""Record the repo's perf trajectory: run perf_engine N times, keep medians.

Microbenchmark numbers on a shared machine are noisy; a single run is not a
record. This tool runs the google-benchmark suite N times (default 10),
takes the per-benchmark median of wall time and items/second, and writes a
BENCH_<date>.json snapshot next to the repo root. Committing one snapshot
per perf-relevant PR gives the project a queryable performance history.

Output format (documented in README.md):

    {
      "date": "YYYY-MM-DD",
      "runs": 10,
      "benchmark_args": ["--benchmark_min_time=0.2"],
      "environment": {                 // provenance: two snapshots are only
        "git_sha": "...",              // comparable when these match
        "compiler": "/usr/bin/c++",
        "build_type": "Release",
        "cxx_flags": "...",
        "num_cpus": 8
      },
      "benchmarks": {
        "BM_PacketSim/200": {
          "real_time_ns": 12862784.0,   // median across runs
          "cpu_time_ns": 12740341.0,
          "items_per_second": 1991550.0
        },
        ...
      }
    }

Usage:
    tools/bench_record.py --binary build/bench/perf_engine [--runs 10]
        [--filter REGEX] [--out BENCH_2026-08-06.json] [--label NOTE]

or via the build system:  cmake --build build --target bench-record

Comparison mode prints the per-benchmark items/s delta between two
snapshots (baseline first) and exits nonzero when any benchmark regresses
by more than --tolerance (default 3%, the bound in ISSUE/DESIGN):

    tools/bench_record.py --compare BASELINE.json CANDIDATE.json
        [--tolerance 0.03] [--tolerances 'BM_PacketSimPar=-0.5,...']

--tolerances overrides the bound per benchmark (exact-name match). A
negative value demands an IMPROVEMENT: -0.5 means the candidate must beat
the baseline by at least 50% (the 1.5x gate CI applies to the parallel
packet engine against its serial baseline).

Snapshots may also carry a "model_check" section (written by
tools/mc_check --summary-json): per scenario/P, the explored interleaving
counts. --compare diffs those too and fails on any coverage drop, dropped
scenario, new violation, or newly-capped config — exploration counts are
deterministic, so a silent shrink means the checker stopped looking, not
that the protocol got better. Files containing only a model_check section
(no benchmarks) compare fine against each other.
"""

import argparse
import datetime
import json
import pathlib
import statistics
import subprocess
import sys
import tempfile


def collect_environment(binary, context):
    """Provenance block for the snapshot: git SHA, compiler, flags, CPUs.

    Compiler identity and flags come from the CMakeCache.txt of the build
    tree containing the binary; the git SHA from `git rev-parse`. All
    best-effort — a missing cache or git tree just omits the key, it never
    fails the recording run.
    """
    env = {}
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(binary).resolve().parent,
            capture_output=True, text=True, check=True).stdout.strip()
        if sha:
            env["git_sha"] = sha
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=pathlib.Path(binary).resolve().parent,
            capture_output=True, text=True, check=True).stdout.strip()
        env["git_dirty"] = bool(dirty)
    except (OSError, subprocess.CalledProcessError):
        pass

    # Walk up from the binary to the build tree root (bench/ -> build/).
    cache_keys = {
        "CMAKE_CXX_COMPILER:FILEPATH": "compiler",
        "CMAKE_CXX_COMPILER:STRING": "compiler",
        "CMAKE_BUILD_TYPE:STRING": "build_type",
        "CMAKE_CXX_FLAGS:STRING": "cxx_flags",
        "LOGP_SANITIZE:STRING": "sanitize",
        "LOGP_OBS:BOOL": "obs",
    }
    for parent in pathlib.Path(binary).resolve().parents:
        cache = parent / "CMakeCache.txt"
        if not cache.is_file():
            continue
        for line in cache.read_text().splitlines():
            key, sep, value = line.partition("=")
            if sep and key in cache_keys and value:
                env[cache_keys[key]] = value
        break

    if context:  # google-benchmark's own context block from the first run
        for key in ("num_cpus", "mhz_per_cpu", "library_version"):
            if key in context:
                env[key] = context[key]
    return env


def run_once(binary, bench_filter, min_time, index):
    """One full suite run; returns ({name: {metric: value}}, context)."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    cmd = [
        binary,
        f"--benchmark_out={out_path}",
        "--benchmark_out_format=json",
        f"--benchmark_min_time={min_time}",
    ]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    print(f"[bench_record] run {index}: {' '.join(cmd)}", file=sys.stderr)
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    with open(out_path) as f:
        report = json.load(f)
    pathlib.Path(out_path).unlink()

    results = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        entry = {
            "real_time_ns": float(bench["real_time"]),
            "cpu_time_ns": float(bench["cpu_time"]),
        }
        if "items_per_second" in bench:
            entry["items_per_second"] = float(bench["items_per_second"])
        results[name] = entry
    return results, report.get("context", {})


def parse_tolerances(spec):
    """'NAME=0.05,NAME2=-0.5' -> {name: float}. Negative = must improve."""
    table = {}
    if not spec:
        return table
    for item in spec.split(","):
        name, sep, value = item.partition("=")
        if not sep or not name:
            raise ValueError(f"bad --tolerances entry: {item!r}")
        table[name.strip()] = float(value)
    return table


def compare_model_check(base_mc, cand_mc):
    """Diffs mc_check coverage summaries; returns the number of regressions.

    Exhaustive exploration counts are deterministic, so any drop in explored
    interleavings (or choice points) for a scenario is lost coverage and
    fails the gate exactly like a perf regression. A scenario disappearing
    from the candidate, a violation, or a previously-exhaustive config
    becoming capped all count too. Growth is fine (more coverage).
    """
    regressions = 0
    keys = sorted(set(base_mc) | set(cand_mc))
    width = max(len(k) for k in keys)
    print(f"{'model-check'.ljust(width)}  {'base runs':>12}  "
          f"{'cand runs':>12}  {'base cps':>12}  {'cand cps':>12}")
    for key in keys:
        b, c = base_mc.get(key), cand_mc.get(key)
        if c is None:
            print(f"{key.ljust(width)}  scenario DROPPED from candidate")
            regressions += 1
            continue
        if b is None:
            print(f"{key.ljust(width)}  {'new':>12}  {c['runs']:12d}"
                  f"  {'new':>12}  {c['choice_points']:12d}")
            continue
        flags = []
        if c["runs"] < b["runs"] or c["choice_points"] < b["choice_points"]:
            flags.append("COVERAGE DROP")
        if c.get("capped") and not b.get("capped"):
            flags.append("NEWLY CAPPED")
        if c.get("violations"):
            flags.append(f"{c['violations']} VIOLATIONS")
        regressions += bool(flags)
        print(f"{key.ljust(width)}  {b['runs']:12d}  {c['runs']:12d}"
              f"  {b['choice_points']:12d}  {c['choice_points']:12d}"
              f"{'  ' + ', '.join(flags) if flags else ''}")
    return regressions


def compare(baseline_path, candidate_path, tolerance, tolerances=None):
    """Prints per-benchmark deltas; returns the number of regressions."""
    with open(baseline_path) as f:
        base_doc = json.load(f)
    with open(candidate_path) as f:
        cand_doc = json.load(f)
    base = base_doc.get("benchmarks", {})
    cand = cand_doc.get("benchmarks", {})
    tolerances = tolerances or {}

    regressions = 0
    if "model_check" in base_doc or "model_check" in cand_doc:
        if "model_check" not in cand_doc:
            print("[bench_record] model_check section DROPPED from candidate",
                  file=sys.stderr)
            regressions += 1
        else:
            regressions += compare_model_check(
                base_doc.get("model_check", {}), cand_doc["model_check"])
        if not base and not cand:
            return regressions

    names = sorted(set(base) & set(cand))
    if not names:
        print("[bench_record] no common benchmarks to compare",
              file=sys.stderr)
        return regressions + 1
    unmatched = sorted(set(tolerances) - set(names))
    if unmatched:
        print(f"[bench_record] --tolerances names not in both snapshots: "
              f"{', '.join(unmatched)}", file=sys.stderr)
        return 1
    width = max(len(n) for n in names)
    print(f"{'benchmark'.ljust(width)}  {'baseline':>14}  {'candidate':>14}"
          f"  {'delta':>8}")
    for name in names:
        b = base[name].get("items_per_second")
        c = cand[name].get("items_per_second")
        if not b or not c:
            continue
        delta = (c - b) / b
        bound = tolerances.get(name, tolerance)
        flag = ""
        if delta < -bound:
            # bound < 0 means the candidate had to *improve* by |bound|.
            flag = ("  BELOW REQUIRED SPEEDUP" if bound < 0
                    else "  REGRESSION")
            regressions += 1
        print(f"{name.ljust(width)}  {b:14.0f}  {c:14.0f}  {delta:+7.1%}"
              f"{flag}")
    only = sorted(set(base) ^ set(cand))
    if only:
        print(f"[bench_record] not in both snapshots: {', '.join(only)}",
              file=sys.stderr)
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--binary", default="build/bench/perf_engine",
                        help="google-benchmark binary to run")
    parser.add_argument("--runs", type=int, default=10,
                        help="number of full-suite runs to take medians over")
    parser.add_argument("--filter", default="",
                        help="--benchmark_filter regex passed through")
    parser.add_argument("--min-time", default="0.1",
                        help="--benchmark_min_time per benchmark per run")
    parser.add_argument("--out", default="",
                        help="output path (default BENCH_<date>.json in cwd)")
    parser.add_argument("--label", default="",
                        help="free-form note stored in the snapshot")
    parser.add_argument("--compare", nargs=2, metavar=("BASELINE", "CANDIDATE"),
                        help="compare two snapshots instead of recording")
    parser.add_argument("--merge-mc", nargs="+", metavar="SUMMARY",
                        help="merge the model_check sections of the given "
                             "mc_check summaries into --out (CI runs several "
                             "scenario/P batches, the gate compares one file)")
    parser.add_argument("--tolerance", type=float, default=0.03,
                        help="max allowed items/s regression in --compare "
                             "mode (fraction, default 0.03)")
    parser.add_argument("--tolerances", default="",
                        help="per-benchmark overrides for --compare, e.g. "
                             "'BM_PacketSimPar=-0.5,BM_PingPong/1000=0.05'; "
                             "negative values require that much improvement")
    args = parser.parse_args()

    if args.compare:
        try:
            per_bench = parse_tolerances(args.tolerances)
        except ValueError as err:
            parser.error(str(err))
        sys.exit(1 if compare(args.compare[0], args.compare[1],
                              args.tolerance, per_bench) else 0)

    if args.merge_mc:
        if not args.out:
            parser.error("--merge-mc requires --out")
        merged = {}
        for path in args.merge_mc:
            with open(path) as f:
                section = json.load(f).get("model_check", {})
            dupes = set(section) & set(merged)
            if dupes:
                parser.error(f"duplicate model_check keys across summaries: "
                             f"{', '.join(sorted(dupes))}")
            merged.update(section)
        pathlib.Path(args.out).write_text(
            json.dumps({"model_check": merged}, indent=2, sort_keys=True)
            + "\n")
        print(f"[bench_record] wrote {args.out} ({len(merged)} model-check "
              f"configs)", file=sys.stderr)
        return

    if args.runs < 1:
        parser.error("--runs must be >= 1")
    binary = pathlib.Path(args.binary)
    if not binary.exists():
        parser.error(f"benchmark binary not found: {binary} (build it first)")

    outcomes = [run_once(str(binary), args.filter, args.min_time, i + 1)
                for i in range(args.runs)]
    samples = [results for results, _ in outcomes]
    environment = collect_environment(str(binary), outcomes[0][1])

    names = sorted({name for run in samples for name in run})
    benchmarks = {}
    for name in names:
        runs = [run[name] for run in samples if name in run]
        metrics = {}
        for metric in ("real_time_ns", "cpu_time_ns", "items_per_second"):
            values = [r[metric] for r in runs if metric in r]
            if values:
                metrics[metric] = statistics.median(values)
        metrics["samples"] = len(runs)
        benchmarks[name] = metrics

    date = datetime.date.today().isoformat()
    snapshot = {
        "date": date,
        "runs": args.runs,
        "benchmark_args": [f"--benchmark_min_time={args.min_time}"] +
                          ([f"--benchmark_filter={args.filter}"]
                           if args.filter else []),
        "environment": environment,
        "benchmarks": benchmarks,
    }
    if args.label:
        snapshot["label"] = args.label

    out = pathlib.Path(args.out) if args.out else pathlib.Path(
        f"BENCH_{date}.json")
    out.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(f"[bench_record] wrote {out} ({len(benchmarks)} benchmarks, "
          f"median of {args.runs} runs)", file=sys.stderr)


if __name__ == "__main__":
    main()
