// mc_check: the model-checking CLI and CI correctness gate.
//
// Exhaustively (or up to --max-branches) explores the interleaving tree of
// one or more protocol scenarios at small P, asserting the five protocol
// invariants (src/mc/invariants.hpp) on every terminal state. A violation
// prints its choice string — `--replay <string>` reruns exactly that
// interleaving through the normal scheduler path and, with --dump-dir,
// writes its Chrome-trace JSON for chrome://tracing / Perfetto plus the
// critical-path artifact (obs/critical_path.hpp) of the same interleaving,
// so a counterexample arrives with the dependency chain that produced its
// schedule (tools/trace_summary.py renders both).
//
//   mc_check --scenario retransmit_race --p 3                 # exhaustive
//   mc_check --scenario all --p 2,3 --summary-json mc.json    # CI gate
//   mc_check --scenario send_ack --p 5 --max-branches 200000 \
//            --shards 8 --threads 8                           # deep, capped
//   mc_check --scenario send_ack --p 3 --replay 0,2,1 --dump-dir traces/
//
// Exit status: 0 all invariants hold, 1 violation found, 2 usage error.
//
// The --summary-json file ({"model_check": {"<scenario>/P=<n>": {...}}})
// feeds tools/bench_record.py --compare, which fails the gate when explored
// coverage silently drops between runs the same way it fails a perf
// regression.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/sweep.hpp"
#include "mc/explorer.hpp"
#include "mc/invariants.hpp"
#include "mc/oracle.hpp"
#include "mc/scenarios.hpp"
#include "util/check.hpp"

namespace {

using namespace logp;

constexpr const char* kUsage =
    "usage: mc_check [options]\n"
    "  --scenario NAMES   comma list or 'all' (send_ack, retransmit_race,\n"
    "                     reliable_broadcast, resilient_broadcast,\n"
    "                     resilient_reduce, detector, rejoin,\n"
    "                     epoch_broadcast)       [send_ack]\n"
    "  --p LIST           comma list of processor counts       [3]\n"
    "  --messages N       payloads per sender/destination pair [1]\n"
    "  --retries N        reliable-layer max retries           [3]\n"
    "  --timeout CYC      first ack timeout (0 = scenario default)\n"
    "  --drop-budget N    adversarial losses per path (<= retries)\n"
    "  --latency-min CYC  enable latency choice points in [CYC, L]\n"
    "  --dead LIST        processors failed from cycle 0       []\n"
    "  --max-branches N   cap explored interleavings (0 = exhaustive)\n"
    "  --shards N / --shard I   partition the root subtrees (I=-1: all)\n"
    "  --threads N        parallelism across shards            [1]\n"
    "  --seed-prefix CSV  explore only under this choice prefix\n"
    "  --max-violations N stop after N violations              [1]\n"
    "  --replay CSV       run one interleaving, report, and exit\n"
    "  --dump-dir DIR     write counterexample / replay traces here\n"
    "                     (Chrome trace + critical-path JSON per run)\n"
    "  --summary-json F   write the model_check coverage summary\n"
    "  --rounds N         heartbeat rounds in the detector scenario  [2]\n"
    "  --mutate-no-dedup  seed the dedup bug (mutation test; must fail)\n"
    "  --mutate-no-epoch-bump  seed the membership epoch bug (rejoin\n"
    "                     scenario mutation test; must fail)\n";

std::vector<int> parse_int_list(const std::string& csv, const char* what) {
  std::vector<int> vals = mc::parse_choices(csv);
  LOGP_CHECK_MSG(!vals.empty(), "empty " << what << " list");
  return vals;
}

std::string combo_key(const mc::ScenarioConfig& cfg) {
  std::ostringstream os;
  os << cfg.scenario << "/P=" << cfg.P();
  return os.str();
}

void dump_trace(const std::string& dir, const std::string& name,
                const std::string& json) {
  const std::string path = dir + "/" + name;
  std::ofstream f(path, std::ios::binary);
  LOGP_CHECK_MSG(f.good(), "cannot write " << path);
  f << json;
  f.close();
  std::printf("  trace written: %s\n", path.c_str());
}

struct ComboSummary {
  std::string key;
  mc::ExplorerResult result;
};

void write_summary(const std::string& path,
                   const std::vector<ComboSummary>& combos) {
  std::ofstream f(path, std::ios::binary);
  LOGP_CHECK_MSG(f.good(), "cannot write " << path);
  f << "{\n  \"model_check\": {\n";
  for (std::size_t i = 0; i < combos.size(); ++i) {
    const auto& c = combos[i];
    f << "    \"" << c.key << "\": {"
      << "\"runs\": " << c.result.runs
      << ", \"choice_points\": " << c.result.choice_points
      << ", \"pruned\": " << c.result.pruned
      << ", \"max_depth\": " << c.result.max_depth
      << ", \"capped\": " << (c.result.capped ? "true" : "false")
      << ", \"violations\": " << c.result.violations.size() << "}"
      << (i + 1 < combos.size() ? "," : "") << "\n";
  }
  f << "  }\n}\n";
}

int run_replay(mc::ScenarioConfig cfg, const std::vector<int>& choices,
               const std::string& dump_dir) {
  mc::RecordingOracle oracle(choices, cfg.drop_budget);
  const bool want_trace = !dump_dir.empty();
  const mc::RunOutcome out = mc::run_scenario(cfg, &oracle, want_trace);
  const std::vector<std::string> bad = mc::check_invariants(cfg, out);
  std::printf("replay %s: %s, finish=%lld, choice points=%zu\n",
              combo_key(cfg).c_str(), out.ok ? "completed" : "FAILED",
              static_cast<long long>(out.finish), oracle.record().size());
  if (!out.sends.empty())
    std::printf(
        "  reliable: sends=%lld retransmits=%lld duplicates=%lld "
        "delivered=%lld dead_peers=%lld\n",
        static_cast<long long>(out.rel.data_sends),
        static_cast<long long>(out.rel.retransmits),
        static_cast<long long>(out.rel.duplicates),
        static_cast<long long>(out.rel.delivered),
        static_cast<long long>(out.rel.dead_peers));
  for (const std::string& b : bad)
    std::printf("  VIOLATION: %s\n", b.c_str());
  if (want_trace) {
    std::ostringstream name;
    name << "mc_" << cfg.scenario << "_p" << cfg.P() << "_replay";
    dump_trace(dump_dir, name.str() + ".json", out.trace_json);
    dump_trace(dump_dir, name.str() + ".critpath.json", out.critpath_json);
  }
  return bad.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using exp::bool_from_args;
  using exp::int_from_args;
  using exp::string_from_args;

  const std::string scen_arg = string_from_args(argc, argv, "--scenario",
                                                "send_ack");
  const std::string p_arg = string_from_args(argc, argv, "--p", "3");
  const int messages = int_from_args(argc, argv, "--messages", 1);
  const int retries = int_from_args(argc, argv, "--retries", 3);
  const int timeout = int_from_args(argc, argv, "--timeout", 0);
  const int drop_budget = int_from_args(argc, argv, "--drop-budget", -1);
  const int latency_min = int_from_args(argc, argv, "--latency-min", -1);
  const std::string dead_arg = string_from_args(argc, argv, "--dead", "");
  const int max_branches = int_from_args(argc, argv, "--max-branches", 0);
  const int shards = int_from_args(argc, argv, "--shards", 1);
  const int shard = int_from_args(argc, argv, "--shard", -1);
  const int threads = int_from_args(argc, argv, "--threads", 1);
  const std::string prefix_arg =
      string_from_args(argc, argv, "--seed-prefix", "");
  const int max_violations = int_from_args(argc, argv, "--max-violations", 1);
  const std::string replay_arg = string_from_args(argc, argv, "--replay", "");
  const bool do_replay = replay_arg != "";
  const std::string dump_dir = string_from_args(argc, argv, "--dump-dir", "");
  const std::string summary_path =
      string_from_args(argc, argv, "--summary-json", "");
  const int rounds = int_from_args(argc, argv, "--rounds", 0);
  const bool mutate = bool_from_args(argc, argv, "--mutate-no-dedup");
  const bool mutate_bump =
      bool_from_args(argc, argv, "--mutate-no-epoch-bump");
  if (const int rc = exp::reject_unknown_flags(argc, argv, kUsage)) return rc;

  try {
    std::vector<std::string> scenarios;
    if (scen_arg == "all") {
      scenarios = mc::scenario_names();
    } else {
      std::istringstream is(scen_arg);
      std::string tok;
      while (std::getline(is, tok, ',')) scenarios.push_back(tok);
    }
    const std::vector<int> ps = parse_int_list(p_arg, "--p");

    std::vector<ComboSummary> combos;
    bool any_violation = false;
    for (const std::string& name : scenarios) {
      for (const int P : ps) {
        mc::ScenarioConfig cfg = mc::scenario_defaults(name, P);
        cfg.messages = messages;
        cfg.max_retries = retries;
        if (timeout > 0) cfg.base_timeout = timeout;
        // Scenarios that forbid adversarial loss keep their forced 0.
        if (drop_budget >= 0 && cfg.drop_budget > 0)
          cfg.drop_budget = drop_budget;
        cfg.latency_min = latency_min;
        if (rounds > 0) cfg.detector_rounds = rounds;
        for (const int d : mc::parse_choices(dead_arg))
          cfg.dead_procs.push_back(d);
        cfg.mutate_no_dedup =
            mutate && !cfg.is_resilient() && !cfg.is_membership();
        cfg.mutate_no_epoch_bump = mutate_bump && cfg.scenario == "rejoin";

        if (do_replay)
          return run_replay(cfg, mc::parse_choices(replay_arg), dump_dir);

        mc::ExplorerOptions opts;
        opts.max_branches = max_branches;
        opts.shards = shards;
        opts.shard = shard;
        opts.threads = threads;
        opts.seed_prefix = mc::parse_choices(prefix_arg);
        opts.max_violations = max_violations;

        const mc::ExplorerResult res = mc::explore(cfg, opts);
        std::printf(
            "%-28s runs=%lld choice_points=%lld pruned=%lld max_depth=%lld%s "
            "violations=%zu\n",
            combo_key(cfg).c_str(), static_cast<long long>(res.runs),
            static_cast<long long>(res.choice_points),
            static_cast<long long>(res.pruned),
            static_cast<long long>(res.max_depth),
            res.capped ? " (capped)" : "", res.violations.size());
        for (const mc::Violation& v : res.violations) {
          any_violation = true;
          const std::string choices = mc::format_choices(v.choices);
          std::printf("  VIOLATION at choices [%s]:\n", choices.c_str());
          for (const std::string& b : v.failures)
            std::printf("    %s\n", b.c_str());
          std::printf(
              "  replay: mc_check --scenario %s --p %d --replay %s\n",
              cfg.scenario.c_str(), cfg.P(), choices.c_str());
          if (!dump_dir.empty()) {
            mc::RecordingOracle oracle(v.choices, cfg.drop_budget);
            const mc::RunOutcome rerun = mc::run_scenario(cfg, &oracle, true);
            std::ostringstream fname;
            fname << "mc_" << cfg.scenario << "_p" << cfg.P() << "_violation";
            dump_trace(dump_dir, fname.str() + ".json", rerun.trace_json);
            dump_trace(dump_dir, fname.str() + ".critpath.json",
                       rerun.critpath_json);
          }
        }
        combos.push_back(ComboSummary{combo_key(cfg), res});
      }
    }
    if (!summary_path.empty()) write_summary(summary_path, combos);
    return any_violation ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mc_check: %s\n%s", e.what(), kUsage);
    return 2;
  }
}
