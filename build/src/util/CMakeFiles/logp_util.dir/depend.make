# Empty dependencies file for logp_util.
# This may be replaced when dependencies are built.
