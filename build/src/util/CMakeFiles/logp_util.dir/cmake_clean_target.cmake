file(REMOVE_RECURSE
  "liblogp_util.a"
)
