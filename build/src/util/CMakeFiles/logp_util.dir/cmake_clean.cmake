file(REMOVE_RECURSE
  "CMakeFiles/logp_util.dir/format.cpp.o"
  "CMakeFiles/logp_util.dir/format.cpp.o.d"
  "CMakeFiles/logp_util.dir/rng.cpp.o"
  "CMakeFiles/logp_util.dir/rng.cpp.o.d"
  "CMakeFiles/logp_util.dir/stats.cpp.o"
  "CMakeFiles/logp_util.dir/stats.cpp.o.d"
  "CMakeFiles/logp_util.dir/table.cpp.o"
  "CMakeFiles/logp_util.dir/table.cpp.o.d"
  "liblogp_util.a"
  "liblogp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
