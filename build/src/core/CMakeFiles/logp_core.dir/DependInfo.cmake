
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/broadcast_tree.cpp" "src/core/CMakeFiles/logp_core.dir/broadcast_tree.cpp.o" "gcc" "src/core/CMakeFiles/logp_core.dir/broadcast_tree.cpp.o.d"
  "/root/repo/src/core/fft_cost.cpp" "src/core/CMakeFiles/logp_core.dir/fft_cost.cpp.o" "gcc" "src/core/CMakeFiles/logp_core.dir/fft_cost.cpp.o.d"
  "/root/repo/src/core/lu_cost.cpp" "src/core/CMakeFiles/logp_core.dir/lu_cost.cpp.o" "gcc" "src/core/CMakeFiles/logp_core.dir/lu_cost.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/logp_core.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/logp_core.dir/params.cpp.o.d"
  "/root/repo/src/core/summation.cpp" "src/core/CMakeFiles/logp_core.dir/summation.cpp.o" "gcc" "src/core/CMakeFiles/logp_core.dir/summation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/logp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
