file(REMOVE_RECURSE
  "liblogp_core.a"
)
