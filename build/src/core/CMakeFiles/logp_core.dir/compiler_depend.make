# Empty compiler generated dependencies file for logp_core.
# This may be replaced when dependencies are built.
