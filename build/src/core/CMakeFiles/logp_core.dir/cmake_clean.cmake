file(REMOVE_RECURSE
  "CMakeFiles/logp_core.dir/broadcast_tree.cpp.o"
  "CMakeFiles/logp_core.dir/broadcast_tree.cpp.o.d"
  "CMakeFiles/logp_core.dir/fft_cost.cpp.o"
  "CMakeFiles/logp_core.dir/fft_cost.cpp.o.d"
  "CMakeFiles/logp_core.dir/lu_cost.cpp.o"
  "CMakeFiles/logp_core.dir/lu_cost.cpp.o.d"
  "CMakeFiles/logp_core.dir/params.cpp.o"
  "CMakeFiles/logp_core.dir/params.cpp.o.d"
  "CMakeFiles/logp_core.dir/summation.cpp.o"
  "CMakeFiles/logp_core.dir/summation.cpp.o.d"
  "liblogp_core.a"
  "liblogp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
