# Empty dependencies file for logp_net.
# This may be replaced when dependencies are built.
