file(REMOVE_RECURSE
  "CMakeFiles/logp_net.dir/packet_sim.cpp.o"
  "CMakeFiles/logp_net.dir/packet_sim.cpp.o.d"
  "CMakeFiles/logp_net.dir/topology.cpp.o"
  "CMakeFiles/logp_net.dir/topology.cpp.o.d"
  "liblogp_net.a"
  "liblogp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
