file(REMOVE_RECURSE
  "liblogp_net.a"
)
