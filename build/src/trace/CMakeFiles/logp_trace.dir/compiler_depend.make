# Empty compiler generated dependencies file for logp_trace.
# This may be replaced when dependencies are built.
