file(REMOVE_RECURSE
  "liblogp_trace.a"
)
