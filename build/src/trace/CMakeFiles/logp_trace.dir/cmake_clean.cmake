file(REMOVE_RECURSE
  "CMakeFiles/logp_trace.dir/recorder.cpp.o"
  "CMakeFiles/logp_trace.dir/recorder.cpp.o.d"
  "CMakeFiles/logp_trace.dir/timeline.cpp.o"
  "CMakeFiles/logp_trace.dir/timeline.cpp.o.d"
  "liblogp_trace.a"
  "liblogp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
