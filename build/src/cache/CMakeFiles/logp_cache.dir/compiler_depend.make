# Empty compiler generated dependencies file for logp_cache.
# This may be replaced when dependencies are built.
