file(REMOVE_RECURSE
  "CMakeFiles/logp_cache.dir/cache.cpp.o"
  "CMakeFiles/logp_cache.dir/cache.cpp.o.d"
  "CMakeFiles/logp_cache.dir/fft_trace.cpp.o"
  "CMakeFiles/logp_cache.dir/fft_trace.cpp.o.d"
  "liblogp_cache.a"
  "liblogp_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logp_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
