file(REMOVE_RECURSE
  "liblogp_cache.a"
)
