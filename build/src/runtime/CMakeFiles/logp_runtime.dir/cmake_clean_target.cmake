file(REMOVE_RECURSE
  "liblogp_runtime.a"
)
