file(REMOVE_RECURSE
  "CMakeFiles/logp_runtime.dir/bulk.cpp.o"
  "CMakeFiles/logp_runtime.dir/bulk.cpp.o.d"
  "CMakeFiles/logp_runtime.dir/collectives.cpp.o"
  "CMakeFiles/logp_runtime.dir/collectives.cpp.o.d"
  "CMakeFiles/logp_runtime.dir/dsm.cpp.o"
  "CMakeFiles/logp_runtime.dir/dsm.cpp.o.d"
  "CMakeFiles/logp_runtime.dir/scheduler.cpp.o"
  "CMakeFiles/logp_runtime.dir/scheduler.cpp.o.d"
  "liblogp_runtime.a"
  "liblogp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
