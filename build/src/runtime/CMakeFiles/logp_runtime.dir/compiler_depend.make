# Empty compiler generated dependencies file for logp_runtime.
# This may be replaced when dependencies are built.
