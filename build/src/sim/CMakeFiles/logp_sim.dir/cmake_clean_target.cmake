file(REMOVE_RECURSE
  "liblogp_sim.a"
)
