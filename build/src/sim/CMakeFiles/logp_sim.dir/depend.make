# Empty dependencies file for logp_sim.
# This may be replaced when dependencies are built.
