file(REMOVE_RECURSE
  "CMakeFiles/logp_sim.dir/machine.cpp.o"
  "CMakeFiles/logp_sim.dir/machine.cpp.o.d"
  "liblogp_sim.a"
  "liblogp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
