# Empty compiler generated dependencies file for logp_models.
# This may be replaced when dependencies are built.
