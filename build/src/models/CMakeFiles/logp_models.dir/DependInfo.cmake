
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/bsp.cpp" "src/models/CMakeFiles/logp_models.dir/bsp.cpp.o" "gcc" "src/models/CMakeFiles/logp_models.dir/bsp.cpp.o.d"
  "/root/repo/src/models/pram.cpp" "src/models/CMakeFiles/logp_models.dir/pram.cpp.o" "gcc" "src/models/CMakeFiles/logp_models.dir/pram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/logp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/logp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
