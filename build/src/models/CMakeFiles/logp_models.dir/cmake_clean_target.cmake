file(REMOVE_RECURSE
  "liblogp_models.a"
)
