file(REMOVE_RECURSE
  "CMakeFiles/logp_models.dir/bsp.cpp.o"
  "CMakeFiles/logp_models.dir/bsp.cpp.o.d"
  "CMakeFiles/logp_models.dir/pram.cpp.o"
  "CMakeFiles/logp_models.dir/pram.cpp.o.d"
  "liblogp_models.a"
  "liblogp_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logp_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
