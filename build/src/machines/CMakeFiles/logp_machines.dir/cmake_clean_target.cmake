file(REMOVE_RECURSE
  "liblogp_machines.a"
)
