file(REMOVE_RECURSE
  "CMakeFiles/logp_machines.dir/database.cpp.o"
  "CMakeFiles/logp_machines.dir/database.cpp.o.d"
  "CMakeFiles/logp_machines.dir/probe.cpp.o"
  "CMakeFiles/logp_machines.dir/probe.cpp.o.d"
  "liblogp_machines.a"
  "liblogp_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logp_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
