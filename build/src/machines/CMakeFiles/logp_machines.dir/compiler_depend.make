# Empty compiler generated dependencies file for logp_machines.
# This may be replaced when dependencies are built.
