file(REMOVE_RECURSE
  "liblogp_algo.a"
)
