
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/concomp.cpp" "src/algo/CMakeFiles/logp_algo.dir/concomp.cpp.o" "gcc" "src/algo/CMakeFiles/logp_algo.dir/concomp.cpp.o.d"
  "/root/repo/src/algo/fft.cpp" "src/algo/CMakeFiles/logp_algo.dir/fft.cpp.o" "gcc" "src/algo/CMakeFiles/logp_algo.dir/fft.cpp.o.d"
  "/root/repo/src/algo/lu.cpp" "src/algo/CMakeFiles/logp_algo.dir/lu.cpp.o" "gcc" "src/algo/CMakeFiles/logp_algo.dir/lu.cpp.o.d"
  "/root/repo/src/algo/matmul.cpp" "src/algo/CMakeFiles/logp_algo.dir/matmul.cpp.o" "gcc" "src/algo/CMakeFiles/logp_algo.dir/matmul.cpp.o.d"
  "/root/repo/src/algo/remote_read.cpp" "src/algo/CMakeFiles/logp_algo.dir/remote_read.cpp.o" "gcc" "src/algo/CMakeFiles/logp_algo.dir/remote_read.cpp.o.d"
  "/root/repo/src/algo/sort.cpp" "src/algo/CMakeFiles/logp_algo.dir/sort.cpp.o" "gcc" "src/algo/CMakeFiles/logp_algo.dir/sort.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/logp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/logp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/logp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/logp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/logp_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
