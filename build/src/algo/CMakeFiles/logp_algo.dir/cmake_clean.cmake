file(REMOVE_RECURSE
  "CMakeFiles/logp_algo.dir/concomp.cpp.o"
  "CMakeFiles/logp_algo.dir/concomp.cpp.o.d"
  "CMakeFiles/logp_algo.dir/fft.cpp.o"
  "CMakeFiles/logp_algo.dir/fft.cpp.o.d"
  "CMakeFiles/logp_algo.dir/lu.cpp.o"
  "CMakeFiles/logp_algo.dir/lu.cpp.o.d"
  "CMakeFiles/logp_algo.dir/matmul.cpp.o"
  "CMakeFiles/logp_algo.dir/matmul.cpp.o.d"
  "CMakeFiles/logp_algo.dir/remote_read.cpp.o"
  "CMakeFiles/logp_algo.dir/remote_read.cpp.o.d"
  "CMakeFiles/logp_algo.dir/sort.cpp.o"
  "CMakeFiles/logp_algo.dir/sort.cpp.o.d"
  "liblogp_algo.a"
  "liblogp_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logp_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
