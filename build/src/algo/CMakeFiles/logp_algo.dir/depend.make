# Empty dependencies file for logp_algo.
# This may be replaced when dependencies are built.
