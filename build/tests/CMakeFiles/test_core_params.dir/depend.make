# Empty dependencies file for test_core_params.
# This may be replaced when dependencies are built.
