# Empty compiler generated dependencies file for test_collectives_extra.
# This may be replaced when dependencies are built.
