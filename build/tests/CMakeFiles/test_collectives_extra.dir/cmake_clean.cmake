file(REMOVE_RECURSE
  "CMakeFiles/test_collectives_extra.dir/test_collectives_extra.cpp.o"
  "CMakeFiles/test_collectives_extra.dir/test_collectives_extra.cpp.o.d"
  "test_collectives_extra"
  "test_collectives_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collectives_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
