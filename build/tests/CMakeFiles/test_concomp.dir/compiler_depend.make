# Empty compiler generated dependencies file for test_concomp.
# This may be replaced when dependencies are built.
