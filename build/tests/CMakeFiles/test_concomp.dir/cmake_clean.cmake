file(REMOVE_RECURSE
  "CMakeFiles/test_concomp.dir/test_concomp.cpp.o"
  "CMakeFiles/test_concomp.dir/test_concomp.cpp.o.d"
  "test_concomp"
  "test_concomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
