file(REMOVE_RECURSE
  "CMakeFiles/test_machines.dir/test_machines.cpp.o"
  "CMakeFiles/test_machines.dir/test_machines.cpp.o.d"
  "test_machines"
  "test_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
