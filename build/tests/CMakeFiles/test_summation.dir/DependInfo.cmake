
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_summation.cpp" "tests/CMakeFiles/test_summation.dir/test_summation.cpp.o" "gcc" "tests/CMakeFiles/test_summation.dir/test_summation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algo/CMakeFiles/logp_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/logp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/logp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/logp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/logp_models.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/logp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/logp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/machines/CMakeFiles/logp_machines.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/logp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/logp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
