file(REMOVE_RECURSE
  "CMakeFiles/test_summation.dir/test_summation.cpp.o"
  "CMakeFiles/test_summation.dir/test_summation.cpp.o.d"
  "test_summation"
  "test_summation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_summation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
