# Empty compiler generated dependencies file for test_remote_read.
# This may be replaced when dependencies are built.
