file(REMOVE_RECURSE
  "CMakeFiles/test_remote_read.dir/test_remote_read.cpp.o"
  "CMakeFiles/test_remote_read.dir/test_remote_read.cpp.o.d"
  "test_remote_read"
  "test_remote_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remote_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
