# Empty dependencies file for test_sim_machine.
# This may be replaced when dependencies are built.
