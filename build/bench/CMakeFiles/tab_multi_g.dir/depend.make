# Empty dependencies file for tab_multi_g.
# This may be replaced when dependencies are built.
