file(REMOVE_RECURSE
  "CMakeFiles/tab_multi_g.dir/tab_multi_g.cpp.o"
  "CMakeFiles/tab_multi_g.dir/tab_multi_g.cpp.o.d"
  "tab_multi_g"
  "tab_multi_g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_multi_g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
