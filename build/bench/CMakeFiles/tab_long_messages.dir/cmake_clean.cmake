file(REMOVE_RECURSE
  "CMakeFiles/tab_long_messages.dir/tab_long_messages.cpp.o"
  "CMakeFiles/tab_long_messages.dir/tab_long_messages.cpp.o.d"
  "tab_long_messages"
  "tab_long_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_long_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
