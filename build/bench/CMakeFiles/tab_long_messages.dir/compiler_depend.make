# Empty compiler generated dependencies file for tab_long_messages.
# This may be replaced when dependencies are built.
