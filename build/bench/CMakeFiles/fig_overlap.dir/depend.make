# Empty dependencies file for fig_overlap.
# This may be replaced when dependencies are built.
