file(REMOVE_RECURSE
  "CMakeFiles/fig_overlap.dir/fig_overlap.cpp.o"
  "CMakeFiles/fig_overlap.dir/fig_overlap.cpp.o.d"
  "fig_overlap"
  "fig_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
