# Empty dependencies file for tab_avg_distance.
# This may be replaced when dependencies are built.
