file(REMOVE_RECURSE
  "CMakeFiles/tab_avg_distance.dir/tab_avg_distance.cpp.o"
  "CMakeFiles/tab_avg_distance.dir/tab_avg_distance.cpp.o.d"
  "tab_avg_distance"
  "tab_avg_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_avg_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
