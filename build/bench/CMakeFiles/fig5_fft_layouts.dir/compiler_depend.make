# Empty compiler generated dependencies file for fig5_fft_layouts.
# This may be replaced when dependencies are built.
