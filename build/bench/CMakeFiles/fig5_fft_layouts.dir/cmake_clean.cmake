file(REMOVE_RECURSE
  "CMakeFiles/fig5_fft_layouts.dir/fig5_fft_layouts.cpp.o"
  "CMakeFiles/fig5_fft_layouts.dir/fig5_fft_layouts.cpp.o.d"
  "fig5_fft_layouts"
  "fig5_fft_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_fft_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
