# Empty dependencies file for tab_matmul.
# This may be replaced when dependencies are built.
