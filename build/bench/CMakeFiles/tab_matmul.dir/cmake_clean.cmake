file(REMOVE_RECURSE
  "CMakeFiles/tab_matmul.dir/tab_matmul.cpp.o"
  "CMakeFiles/tab_matmul.dir/tab_matmul.cpp.o.d"
  "tab_matmul"
  "tab_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
