file(REMOVE_RECURSE
  "CMakeFiles/fig3_broadcast.dir/fig3_broadcast.cpp.o"
  "CMakeFiles/fig3_broadcast.dir/fig3_broadcast.cpp.o.d"
  "fig3_broadcast"
  "fig3_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
