# Empty compiler generated dependencies file for fig2_microprocessors.
# This may be replaced when dependencies are built.
