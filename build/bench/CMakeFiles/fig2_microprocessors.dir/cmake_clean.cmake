file(REMOVE_RECURSE
  "CMakeFiles/fig2_microprocessors.dir/fig2_microprocessors.cpp.o"
  "CMakeFiles/fig2_microprocessors.dir/fig2_microprocessors.cpp.o.d"
  "fig2_microprocessors"
  "fig2_microprocessors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_microprocessors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
