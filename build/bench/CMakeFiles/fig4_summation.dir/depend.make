# Empty dependencies file for fig4_summation.
# This may be replaced when dependencies are built.
