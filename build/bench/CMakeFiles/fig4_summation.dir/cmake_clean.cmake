file(REMOVE_RECURSE
  "CMakeFiles/fig4_summation.dir/fig4_summation.cpp.o"
  "CMakeFiles/fig4_summation.dir/fig4_summation.cpp.o.d"
  "fig4_summation"
  "fig4_summation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_summation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
