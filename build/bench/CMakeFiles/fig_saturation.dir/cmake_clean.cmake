file(REMOVE_RECURSE
  "CMakeFiles/fig_saturation.dir/fig_saturation.cpp.o"
  "CMakeFiles/fig_saturation.dir/fig_saturation.cpp.o.d"
  "fig_saturation"
  "fig_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
