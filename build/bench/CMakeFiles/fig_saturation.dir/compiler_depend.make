# Empty compiler generated dependencies file for fig_saturation.
# This may be replaced when dependencies are built.
