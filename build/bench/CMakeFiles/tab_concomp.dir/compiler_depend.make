# Empty compiler generated dependencies file for tab_concomp.
# This may be replaced when dependencies are built.
