file(REMOVE_RECURSE
  "CMakeFiles/tab_concomp.dir/tab_concomp.cpp.o"
  "CMakeFiles/tab_concomp.dir/tab_concomp.cpp.o.d"
  "tab_concomp"
  "tab_concomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_concomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
