file(REMOVE_RECURSE
  "CMakeFiles/fig6_fft_remap.dir/fig6_fft_remap.cpp.o"
  "CMakeFiles/fig6_fft_remap.dir/fig6_fft_remap.cpp.o.d"
  "fig6_fft_remap"
  "fig6_fft_remap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_fft_remap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
