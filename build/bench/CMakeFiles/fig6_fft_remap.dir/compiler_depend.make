# Empty compiler generated dependencies file for fig6_fft_remap.
# This may be replaced when dependencies are built.
