file(REMOVE_RECURSE
  "CMakeFiles/fig7_fft_mflops.dir/fig7_fft_mflops.cpp.o"
  "CMakeFiles/fig7_fft_mflops.dir/fig7_fft_mflops.cpp.o.d"
  "fig7_fft_mflops"
  "fig7_fft_mflops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_fft_mflops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
