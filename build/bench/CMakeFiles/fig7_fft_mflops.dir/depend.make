# Empty dependencies file for fig7_fft_mflops.
# This may be replaced when dependencies are built.
