# Empty dependencies file for tab1_unloaded_time.
# This may be replaced when dependencies are built.
