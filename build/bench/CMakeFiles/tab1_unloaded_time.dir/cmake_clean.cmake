file(REMOVE_RECURSE
  "CMakeFiles/tab1_unloaded_time.dir/tab1_unloaded_time.cpp.o"
  "CMakeFiles/tab1_unloaded_time.dir/tab1_unloaded_time.cpp.o.d"
  "tab1_unloaded_time"
  "tab1_unloaded_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_unloaded_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
