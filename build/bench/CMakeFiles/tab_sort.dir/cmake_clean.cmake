file(REMOVE_RECURSE
  "CMakeFiles/tab_sort.dir/tab_sort.cpp.o"
  "CMakeFiles/tab_sort.dir/tab_sort.cpp.o.d"
  "tab_sort"
  "tab_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
