# Empty dependencies file for tab_sort.
# This may be replaced when dependencies are built.
