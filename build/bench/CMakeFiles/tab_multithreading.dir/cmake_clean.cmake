file(REMOVE_RECURSE
  "CMakeFiles/tab_multithreading.dir/tab_multithreading.cpp.o"
  "CMakeFiles/tab_multithreading.dir/tab_multithreading.cpp.o.d"
  "tab_multithreading"
  "tab_multithreading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_multithreading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
