# Empty compiler generated dependencies file for tab_multithreading.
# This may be replaced when dependencies are built.
