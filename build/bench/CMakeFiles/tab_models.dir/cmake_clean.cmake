file(REMOVE_RECURSE
  "CMakeFiles/tab_models.dir/tab_models.cpp.o"
  "CMakeFiles/tab_models.dir/tab_models.cpp.o.d"
  "tab_models"
  "tab_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
