# Empty dependencies file for tab_lu_layouts.
# This may be replaced when dependencies are built.
