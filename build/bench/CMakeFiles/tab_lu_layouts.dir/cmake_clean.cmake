file(REMOVE_RECURSE
  "CMakeFiles/tab_lu_layouts.dir/tab_lu_layouts.cpp.o"
  "CMakeFiles/tab_lu_layouts.dir/tab_lu_layouts.cpp.o.d"
  "tab_lu_layouts"
  "tab_lu_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_lu_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
