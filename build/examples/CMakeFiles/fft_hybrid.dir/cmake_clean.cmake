file(REMOVE_RECURSE
  "CMakeFiles/fft_hybrid.dir/fft_hybrid.cpp.o"
  "CMakeFiles/fft_hybrid.dir/fft_hybrid.cpp.o.d"
  "fft_hybrid"
  "fft_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
