# Empty dependencies file for fft_hybrid.
# This may be replaced when dependencies are built.
