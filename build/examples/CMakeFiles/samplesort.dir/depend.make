# Empty dependencies file for samplesort.
# This may be replaced when dependencies are built.
