file(REMOVE_RECURSE
  "CMakeFiles/samplesort.dir/samplesort.cpp.o"
  "CMakeFiles/samplesort.dir/samplesort.cpp.o.d"
  "samplesort"
  "samplesort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samplesort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
