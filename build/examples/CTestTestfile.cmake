# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fft_hybrid "/root/repo/build/examples/fft_hybrid" "4096" "8" "staggered")
set_tests_properties(example_fft_hybrid PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_samplesort "/root/repo/build/examples/samplesort" "512" "8")
set_tests_properties(example_samplesort PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stencil "/root/repo/build/examples/stencil" "128" "20" "8")
set_tests_properties(example_stencil PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
