// Example: 1-D stencil (diffusion) with halo exchange — the paper's
// Section 6.4 "surface to volume" argument. Each processor owns a block of
// cells; per timestep it exchanges one boundary cell with each neighbour and
// updates its block. As cells-per-processor grows, the communication share
// of each step vanishes — locality, not topology, is what matters.
//
//   $ ./stencil [cells_per_proc] [steps] [P]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "runtime/scheduler.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace logp;
using runtime::Ctx;
using runtime::Task;

constexpr std::int32_t kHaloLeft = 10;   // + step parity
constexpr std::int32_t kHaloRight = 12;  // + step parity

// Integer smoothing rule, exact and associative-free: deterministic across
// serial and distributed runs.
std::uint64_t rule(std::uint64_t l, std::uint64_t c, std::uint64_t r) {
  return (l + 2 * c + r) / 4;
}

struct Shared {
  std::int64_t cells;
  int steps;
  Cycles cost_per_cell;
  std::vector<std::vector<std::uint64_t>> block;  // per proc
};

Task stencil_program(Ctx ctx, Shared& sh) {
  const ProcId p = ctx.proc();
  const int P = ctx.nprocs();
  auto& a = sh.block[static_cast<std::size_t>(p)];
  const auto n = static_cast<std::int64_t>(a.size());

  for (int step = 0; step < sh.steps; ++step) {
    const std::int32_t lt = kHaloLeft + (step & 1);
    const std::int32_t rt = kHaloRight + (step & 1);
    // Exchange halos (global boundary cells are fixed at their value).
    if (p > 0) co_await ctx.send(p - 1, rt, a.front());
    if (p + 1 < P) co_await ctx.send(p + 1, lt, a.back());
    std::uint64_t left = a.front(), right = a.back();
    if (p > 0) left = (co_await ctx.recv(lt, p - 1)).word(0);
    if (p + 1 < P) right = (co_await ctx.recv(rt, p + 1)).word(0);

    co_await ctx.compute(n * sh.cost_per_cell);
    std::vector<std::uint64_t> next(a.size());
    for (std::int64_t i = 0; i < n; ++i) {
      const std::uint64_t l = i == 0 ? left : a[static_cast<std::size_t>(i - 1)];
      const std::uint64_t r =
          i == n - 1 ? right : a[static_cast<std::size_t>(i + 1)];
      next[static_cast<std::size_t>(i)] =
          rule(l, a[static_cast<std::size_t>(i)], r);
    }
    // Global boundaries are Dirichlet: first/last cell of the whole domain
    // keep their values.
    if (p == 0) next.front() = a.front();
    if (p + 1 == P) next.back() = a.back();
    a.swap(next);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t cells = 1 << 10;
  int steps = 50;
  int P = 16;
  if (argc > 1) cells = std::atoll(argv[1]);
  if (argc > 2) steps = std::atoi(argv[2]);
  if (argc > 3) P = std::atoi(argv[3]);

  const Params prm{20, 4, 8, P};
  std::cout << "1-D stencil: " << cells << " cells/proc x " << P
            << " procs, " << steps << " steps, " << prm.to_string() << "\n\n";

  auto run_once = [&](std::int64_t cpp) {
    Shared sh;
    sh.cells = cpp;
    sh.steps = steps;
    sh.cost_per_cell = 4;
    sh.block.resize(static_cast<std::size_t>(P));
    std::vector<std::uint64_t> serial;
    for (ProcId q = 0; q < P; ++q) {
      auto& b = sh.block[static_cast<std::size_t>(q)];
      b.resize(static_cast<std::size_t>(cpp));
      for (std::int64_t i = 0; i < cpp; ++i) {
        const std::uint64_t v =
            1000000 + static_cast<std::uint64_t>((q * cpp + i) % 977) * 331;
        b[static_cast<std::size_t>(i)] = v;
        serial.push_back(v);
      }
    }
    sim::MachineConfig mc;
    mc.params = prm;
    runtime::Scheduler sched(mc);
    sched.set_program([&](Ctx ctx) -> Task { return stencil_program(ctx, sh); });
    const Cycles total = sched.run();

    // Serial reference.
    for (int s = 0; s < steps; ++s) {
      std::vector<std::uint64_t> next(serial.size());
      for (std::size_t i = 0; i < serial.size(); ++i) {
        const auto l = i == 0 ? serial[i] : serial[i - 1];
        const auto r = i + 1 == serial.size() ? serial[i] : serial[i + 1];
        next[i] = rule(l, serial[i], r);
      }
      next.front() = serial.front();
      next.back() = serial.back();
      serial.swap(next);
    }
    bool ok = true;
    for (ProcId q = 0; q < P && ok; ++q)
      for (std::int64_t i = 0; i < cpp && ok; ++i)
        ok = sh.block[static_cast<std::size_t>(q)]
                     [static_cast<std::size_t>(i)] ==
             serial[static_cast<std::size_t>(q * cpp + i)];

    const Cycles compute = static_cast<Cycles>(steps) * cpp * 4;
    return std::tuple{total, compute, ok};
  };

  logp::util::TablePrinter tp(
      {"cells/proc", "total cycles", "pure compute", "comm+sync overhead",
       "overhead frac", "verified"});
  bool all_ok = true;
  for (const std::int64_t cpp : {16, 64, 256, 1024, 4096}) {
    const auto [total, compute, ok] = run_once(cpp);
    all_ok = all_ok && ok;
    tp.add_row({logp::util::fmt_count(cpp), logp::util::fmt_count(total),
                logp::util::fmt_count(compute),
                logp::util::fmt_count(total - compute),
                logp::util::fmt(double(total - compute) / double(total), 3),
                ok ? "yes" : "NO"});
  }
  tp.print(std::cout);
  std::cout << "\nThe overhead per step is a constant (halo messages);\n"
               "the compute grows with the block — the surface-to-volume\n"
               "effect that makes topology-specific layouts unnecessary.\n";
  return all_ok ? 0 : 1;
}
