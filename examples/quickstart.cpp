// Quickstart: build a LogP machine, run the paper's Figure 3 broadcast on
// it, and print the per-processor activity timeline.
//
//   $ ./quickstart [L o g P]
//
// With no arguments this reproduces Figure 3 exactly: P=8, L=6, o=2, g=4,
// optimal broadcast completing at t=24.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/broadcast_tree.hpp"
#include "runtime/collectives.hpp"
#include "trace/timeline.hpp"

int main(int argc, char** argv) {
  using namespace logp;

  Params prm{6, 2, 4, 8};
  if (argc == 5) {
    prm.L = std::atol(argv[1]);
    prm.o = std::atol(argv[2]);
    prm.g = std::atol(argv[3]);
    prm.P = static_cast<int>(std::atol(argv[4]));
  }
  prm.validate();
  std::cout << "Machine: " << prm.to_string()
            << "  capacity=" << prm.capacity() << " msgs/endpoint\n\n";

  // 1. Derive the optimal broadcast tree (paper Section 3.3).
  const auto tree = optimal_broadcast_tree(prm);
  std::cout << "Optimal broadcast tree (node: parent -> recv time):\n";
  for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
    const auto& n = tree.nodes[i];
    std::cout << "  P" << i << ": ";
    if (n.parent < 0)
      std::cout << "root";
    else
      std::cout << "from P" << n.parent << " at t=" << n.recv_done;
    if (!n.children.empty()) {
      std::cout << ", sends to {";
      for (std::size_t c = 0; c < n.children.size(); ++c)
        std::cout << (c ? "," : "") << "P" << n.children[c];
      std::cout << "}";
    }
    std::cout << '\n';
  }
  std::cout << "Analytic completion: t=" << tree.completion << "\n\n";

  // 2. Execute the same broadcast on the discrete-event machine.
  sim::MachineConfig cfg;
  cfg.params = prm;
  cfg.record_trace = true;
  runtime::Scheduler sched(cfg);
  std::vector<std::uint64_t> value(static_cast<std::size_t>(prm.P), 0);
  value[0] = 0xC0FFEE;
  sched.set_program([&](runtime::Ctx ctx) -> runtime::Task {
    return runtime::coll::broadcast_optimal(
        ctx, tree, &value[static_cast<std::size_t>(ctx.proc())]);
  });
  const Cycles end = sched.run();
  std::cout << "Simulated completion: t=" << end
            << (end == tree.completion ? "  (matches analysis)" : "  (MISMATCH!)")
            << "\n\n";

  // 3. Show what every processor was doing, cycle by cycle (cf. Figure 3).
  std::cout << trace::render_timeline(sched.machine().recorder(), prm.P);

  // 4. Per-processor accounting.
  std::cout << "\nper-proc cycles: compute/send-o/recv-o/stall/gap\n";
  for (ProcId p = 0; p < prm.P; ++p) {
    const auto& s = sched.machine().stats(p);
    std::cout << "  P" << p << ": " << s.compute << "/" << s.send_overhead
              << "/" << s.recv_overhead << "/" << s.stall << "/" << s.gap_wait
              << '\n';
  }

  bool ok = end == tree.completion;
  for (const auto v : value) ok = ok && v == 0xC0FFEE;
  std::cout << (ok ? "\nOK: every processor received the datum.\n"
                   : "\nFAILURE\n");
  return ok ? 0 : 1;
}
