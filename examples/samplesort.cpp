// Example: splitter (sample) sort — the compute-remap-compute pattern of
// paper Section 4.2.2 — on a simulated LogP machine, with verification,
// next to the oblivious bitonic baseline.
//
//   $ ./samplesort [keys_per_proc] [P]
#include <cstdlib>
#include <iostream>

#include "algo/sort.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace logp;

  std::int64_t keys = 1 << 12;
  int P = 16;
  if (argc > 1) keys = std::atoll(argv[1]);
  if (argc > 2) P = std::atoi(argv[2]);

  const Params prm{20, 4, 8, P};
  std::cout << "distributed sort of " << keys * P << " keys on "
            << prm.to_string() << "\n\n";

  for (const auto algo : {algo::SortAlgo::kSplitter, algo::SortAlgo::kBitonic}) {
    if (algo == algo::SortAlgo::kBitonic && (P & (P - 1)) != 0) {
      std::cout << "bitonic skipped (P not a power of two)\n";
      continue;
    }
    algo::SortConfig cfg;
    cfg.keys_per_proc = keys;
    cfg.algo = algo;
    const auto r = algo::run_distributed_sort(prm, cfg);
    std::cout << algo::sort_algo_name(algo) << ":\n"
              << "  simulated time: " << util::fmt_count(r.total)
              << " cycles\n"
              << "  messages:       " << util::fmt_count(r.messages) << "\n"
              << "  partition imbalance: " << util::fmt(r.imbalance, 2)
              << "x mean\n"
              << "  verified sorted permutation: "
              << (r.verified ? "yes" : "NO") << "\n\n";
    if (!r.verified) return 1;
  }
  return 0;
}
