// Example: the paper's hybrid-layout FFT (Section 4.1), end to end.
//
// Runs a real distributed FFT — complex data travels through the simulated
// CM-5 as 16-byte messages — under a chosen communication schedule, checks
// the result against the serial kernel bit-for-bit, and reports the phase
// breakdown and machine statistics.
//
//   $ ./fft_hybrid [n] [P] [naive|staggered|synchronized]
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "algo/fft.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace logp;
  namespace coll = runtime::coll;

  std::int64_t n = 1 << 14;
  int P = 16;
  coll::A2ASchedule schedule = coll::A2ASchedule::kStaggered;
  if (argc > 1) n = std::atoll(argv[1]);
  if (argc > 2) P = std::atoi(argv[2]);
  if (argc > 3) {
    if (!std::strcmp(argv[3], "naive")) schedule = coll::A2ASchedule::kNaive;
    else if (!std::strcmp(argv[3], "synchronized"))
      schedule = coll::A2ASchedule::kSynchronized;
  }

  const Params prm = Cm5::params(P);
  algo::FftConfig cfg;
  cfg.n = n;
  cfg.schedule = schedule;
  cfg.carry_data = true;

  std::cout << "hybrid FFT: n=" << n << " points on simulated CM-5 "
            << prm.to_string() << ", schedule="
            << coll::a2a_schedule_name(schedule) << "\n";
  const auto r = algo::run_hybrid_fft(prm, cfg);

  const double us = Cm5::kTickNs / 1000.0;
  std::cout << "  phase I  (cyclic, local):   "
            << util::fmt_time_ns(double(r.phase1_end) * Cm5::kTickNs) << "\n"
            << "  remap    (all-to-all):      "
            << util::fmt_time_ns(double(r.remap_time()) * Cm5::kTickNs)
            << "  (" << r.messages << " messages, predicted "
            << util::fmt(double(algo::predicted_remap_time(prm, cfg)) * us, 0)
            << " us)\n"
            << "  phase III (blocked, local): "
            << util::fmt_time_ns(double(r.phase3_time()) * Cm5::kTickNs) << "\n"
            << "  total:                      "
            << util::fmt_time_ns(double(r.total) * Cm5::kTickNs) << "\n"
            << "  stall cycles: " << r.stall_cycles
            << ", gap-wait cycles: " << r.gap_wait_cycles << "\n"
            << "  verified against serial FFT: "
            << (r.verified ? "EXACT MATCH" : "FAILED") << "\n";
  return r.verified ? 0 : 1;
}
